module Online = Ss_stats.Online_stats

type source_report = {
  name : string;
  offered : float;
  admitted : float;
  lost : float;
  loss_fraction : float;
  mean_rate : float;
  peak_rate : float;
  corrupt_slots : int;
  throttled : float;
  discarded : float;
  departed_at : int option;
}

type report = {
  slots : int;
  service : float;
  buffer : float;
  offered_utilization : float;
  carried_utilization : float;
  loss_fraction : float;
  mean_queue : float;
  max_queue : float;
  queue_quantiles : (float * float) list;
  delay_quantiles : (float * float) list;
  class_delay_quantiles : (int * (float * float) list) list;
  overflow : (float * float) list;
  per_source : source_report array;
}

let max_classes = 64

(* Number of slots every source is advanced by (via its block pull)
   before the sequential Lindley/admission loop consumes them;
   amortizes both the per-batch pool synchronization and the
   per-block kernel setup over prefetch_slots * N slots. *)
let prefetch_slots = 256

(* Upper bound on staged elements (sources * block slots) for the
   sharded engine: at N = 10^5 sources a long stage would pin
   hundreds of MB, so the block shrinks as N grows (floor 8). At
   small N the block stretches well past [prefetch_slots] (cap below)
   instead: every block costs one barrier dispatch, and on a
   few-core machine the dispatch wake-up is the whole cost of a
   multi-domain pool, so fewer, longer blocks keep d>1 from losing
   to d=1. The block size only sets staging granularity, never
   arithmetic — the admission loop consumes the same per-slot values
   at any block size, so results are independent of both constants. *)
let staging_budget = 1 lsl 20
let max_sharded_block = 2048

(* All-float mutable record for the per-slot Lindley/admission state:
   float-only records are stored flat, so updating a field is an
   unboxed store — unlike [float ref], whose [:=] boxes a fresh float
   every assignment. This keeps the sequential admission loop free of
   per-slot allocation. *)
type slot_state = {
  mutable q : float;  (* Lindley queue *)
  mutable served : float;  (* total work served *)
  mutable adm : float;  (* work admitted this slot *)
  mutable room : float;  (* remaining admission room this slot *)
  mutable rem : float;  (* remaining service in the class replay *)
  mutable prefix : float;  (* class-backlog prefix sum *)
}

(* Monomorphic min/max: the polymorphic [Stdlib.min]/[Stdlib.max]
   box float arguments at every call. Identical to them for non-NaN
   floats, and every value reaching these is already sanitized. *)
let fmin (a : float) b = if a <= b then a else b
let fmax (a : float) b = if a >= b then a else b

(* ------------------------------------------------------------------ *)
(* Checkpoint/resume                                                   *)
(* ------------------------------------------------------------------ *)

module Ck = Ss_checkpoint

type checkpoint = {
  every : int;  (* minimum slots between snapshots *)
  save : slot:int -> (Ck.W.t -> unit) -> unit;
}

(* Both engines keep the identical set of persistent accumulators;
   gathering them in one record lets a single codec serve the
   reference and the sharded engine (and makes "what survives a
   resume" an explicit, auditable list). Everything NOT in here —
   staging buffers, per-slot scratch ([works]/[classes]/[class_sums]/
   [class_scale]/[class_adm], the adm/room/rem/prefix slot fields,
   shard transpose state) — is recomputed from scratch every slot or
   block, so a resumed run rebuilds it identically by construction.
   [es_traj_cls] is the one trajectory array that carries state across
   slots (residual per-(class, source) backlog cells); the other
   trajectory arrays are per-slot. *)
type engine_state = {
  es_sources : Source.t array;
  es_police : Police.t option;
  es_slots : int;
  es_service : float;
  es_buffer : float;
  es_quantiles : float list;
  es_departed : bool array;
  es_departed_at : int array;
  es_offered : float array;
  es_admitted : float array;
  es_lost : float array;
  es_peak : float array;
  es_corrupt : int array;
  es_throttled : float array;
  es_discarded : float array;
  es_st : slot_state;
  es_queue_stats : Online.t;
  es_q_quant : (float * Online.P2.t) array;
  es_d_quant : (float * Online.P2.t) array;
  es_class_backlog : float array;
  es_class_quant : (float * Online.P2.t) array option array;
  es_top_class : int ref;
  es_thr_hits : int array;
  es_traj_cls : float array;  (* [||] when no trajectory sink *)
}

(* Snapshots are taken only at block-boundary staging points, where
   every source sits exactly at slot [t] (it has produced slots
   0..t-1 and nothing further) and all accumulators reflect exactly
   those slots. Block size never enters the arithmetic, so a resumed
   run whose block boundaries land elsewhere still replays the same
   per-slot statement sequence — the basis of the resume ≡
   uninterrupted bitwise contract. *)
let save_engine es ~t w =
  let n = Array.length es.es_sources in
  Ck.W.tag w "mux-engine";
  Ck.W.int w t;
  Ck.W.int w n;
  Ck.W.int w es.es_slots;
  Ck.W.float w es.es_service;
  Ck.W.float w es.es_buffer;
  Ck.W.int w (Array.length es.es_q_quant);
  Ck.W.int w (Array.length es.es_thr_hits);
  Ck.W.bool w (es.es_traj_cls <> [||]);
  Ck.W.bool w (es.es_police <> None);
  for i = 0 to n - 1 do
    Ck.W.bool w es.es_departed.(i)
  done;
  Ck.W.int_array w es.es_departed_at;
  Ck.W.float_array w es.es_offered;
  Ck.W.float_array w es.es_admitted;
  Ck.W.float_array w es.es_lost;
  Ck.W.float_array w es.es_peak;
  Ck.W.int_array w es.es_corrupt;
  Ck.W.float_array w es.es_throttled;
  Ck.W.float_array w es.es_discarded;
  Ck.W.float w es.es_st.q;
  Ck.W.float w es.es_st.served;
  Online.save es.es_queue_stats w;
  Array.iter (fun (_, p2) -> Online.P2.save p2 w) es.es_q_quant;
  Array.iter (fun (_, p2) -> Online.P2.save p2 w) es.es_d_quant;
  Ck.W.int w !(es.es_top_class);
  Ck.W.float_array w es.es_class_backlog;
  (* Classes 0..top_class all hold estimators (created the first slot
     the class appeared); higher classes were never seen. *)
  for c = 0 to !(es.es_top_class) do
    match es.es_class_quant.(c) with
    | Some qs -> Array.iter (fun (_, p2) -> Online.P2.save p2 w) qs
    | None -> assert false
  done;
  Ck.W.int_array w es.es_thr_hits;
  if es.es_traj_cls <> [||] then
    (* Only rows 0..top_class can hold nonzero cells. *)
    for c = 0 to !(es.es_top_class) do
      for i = 0 to n - 1 do
        Ck.W.float w es.es_traj_cls.((c * n) + i)
      done
    done;
  Ck.W.tag w "mux-sources";
  Array.iter (fun s -> Source.save s w) es.es_sources;
  match es.es_police with Some p -> Police.save p w | None -> ()

(* Restores in place over a freshly constructed engine and returns the
   resume slot. The construction parameters (source count, slots,
   service, buffer, quantile/threshold counts, trajectory and policer
   presence) are verified against the snapshot first: the caller must
   rebuild the run identically before resuming, and a mismatch is a
   refusal, never a silent divergence. *)
let restore_engine es r =
  let fail fmt = Printf.ksprintf (fun s -> raise (Ck.Corrupt ("mux: " ^ s))) fmt in
  let n = Array.length es.es_sources in
  Ck.R.tag r "mux-engine";
  let t0 = Ck.R.int r in
  let check_int name saved live =
    if saved <> live then fail "checkpoint has %s %d, this run has %d" name saved live
  in
  let check_float name saved live =
    if Int64.bits_of_float saved <> Int64.bits_of_float live then
      fail "checkpoint has %s %.17g, this run has %.17g" name saved live
  in
  let check_bool name saved live =
    if saved <> live then
      fail "checkpoint %s %s, this run %s" name
        (if saved then "present" else "absent")
        (if live then "is" else "is not")
  in
  check_int "source count" (Ck.R.int r) n;
  check_int "slots" (Ck.R.int r) es.es_slots;
  check_float "service" (Ck.R.float r) es.es_service;
  check_float "buffer" (Ck.R.float r) es.es_buffer;
  check_int "quantile count" (Ck.R.int r) (Array.length es.es_q_quant);
  check_int "threshold count" (Ck.R.int r) (Array.length es.es_thr_hits);
  check_bool "trajectory" (Ck.R.bool r) (es.es_traj_cls <> [||]);
  check_bool "policer" (Ck.R.bool r) (es.es_police <> None);
  if t0 < 0 || t0 > es.es_slots then
    fail "resume slot %d outside [0, %d]" t0 es.es_slots;
  for i = 0 to n - 1 do
    es.es_departed.(i) <- Ck.R.bool r
  done;
  Ck.R.int_array_into r es.es_departed_at;
  Ck.R.float_array_into r es.es_offered;
  Ck.R.float_array_into r es.es_admitted;
  Ck.R.float_array_into r es.es_lost;
  Ck.R.float_array_into r es.es_peak;
  Ck.R.int_array_into r es.es_corrupt;
  Ck.R.float_array_into r es.es_throttled;
  Ck.R.float_array_into r es.es_discarded;
  es.es_st.q <- Ck.R.float r;
  es.es_st.served <- Ck.R.float r;
  Online.restore es.es_queue_stats r;
  Array.iter (fun (_, p2) -> Online.P2.restore p2 r) es.es_q_quant;
  Array.iter (fun (_, p2) -> Online.P2.restore p2 r) es.es_d_quant;
  let tc = Ck.R.int r in
  if tc < -1 || tc >= max_classes then fail "top class %d outside [-1, %d]" tc (max_classes - 1);
  es.es_top_class := tc;
  Ck.R.float_array_into r es.es_class_backlog;
  for c = 0 to tc do
    let qs =
      Array.of_list (List.map (fun p -> (p, Online.P2.create ~p)) es.es_quantiles)
    in
    Array.iter (fun (_, p2) -> Online.P2.restore p2 r) qs;
    es.es_class_quant.(c) <- Some qs
  done;
  Ck.R.int_array_into r es.es_thr_hits;
  if es.es_traj_cls <> [||] then
    for c = 0 to tc do
      for i = 0 to n - 1 do
        es.es_traj_cls.((c * n) + i) <- Ck.R.float r
      done
    done;
  Ck.R.tag r "mux-sources";
  Array.iter (fun s -> Source.restore s r) es.es_sources;
  (match es.es_police with Some p -> Police.restore p r | None -> ());
  t0

let validate_checkpoint ?checkpoint ?resume sources =
  if checkpoint <> None || resume <> None then begin
    (match checkpoint with
    | Some ck when ck.every < 1 -> invalid_arg "Mux.run: checkpoint interval < 1"
    | _ -> ());
    Array.iter
      (fun s ->
        if not (Source.supports_checkpoint s) then
          invalid_arg
            (Printf.sprintf
               "Mux.run: source %s does not support checkpointing (importance-sampled \
                sources carry likelihood state outside the snapshot)"
               s.Source.name))
      sources
  end

(* ------------------------------------------------------------------ *)
(* Reference engine (pre-shard pooled prefetch)                        *)
(* ------------------------------------------------------------------ *)

(* The pooled per-source prefetch engine, kept verbatim as the
   oracle the sharded engine is tested bit-identical against (and as
   the bench baseline the sharded speedup is measured from). Its
   sequential admission loop defines the arithmetic — corrupt
   handling, policing, class admission, Lindley step, quantiles — in
   one fixed order; the sharded engine below executes the exact same
   per-slot statement sequence over restaged data, which is what
   makes the two engines (and any shard/domain count) bitwise
   interchangeable. *)
let run_reference ?pool ?(buffer = infinity) ?(thresholds = []) ?(quantiles = [ 0.5; 0.9; 0.99 ])
    ?probe ?police ?trajectory ?checkpoint ?resume ~service ~slots sources =
  if slots <= 0 then invalid_arg "Mux.run: slots <= 0";
  if probe <> None && (checkpoint <> None || resume <> None) then
    invalid_arg "Mux.run: ~probe is incompatible with checkpoint/resume (strict lock-step)";
  validate_checkpoint ?checkpoint ?resume sources;
  if service <= 0.0 then invalid_arg "Mux.run: service <= 0";
  if buffer < 0.0 then invalid_arg "Mux.run: buffer < 0";
  let n = Array.length sources in
  if n = 0 then invalid_arg "Mux.run: no sources";
  List.iter (fun b -> if b < 0.0 then invalid_arg "Mux.run: negative threshold") thresholds;
  (match police with
  | Some p when Police.size p <> n -> invalid_arg "Mux.run: policer sized for different sources"
  | _ -> ());
  let departed = Array.make n false in
  let departed_at = Array.make n (-1) in
  (* Source pulls are independent of the queue state, so every source
     is advanced [block] slots at a time through its block pull into
     a source-major staging buffer (source [i] owns the contiguous
     region [i*block .. i*block + block - 1]); the Lindley/admission
     loop below then consumes the staged slots sequentially. Every
     source still sees its slots in order, and sources never share
     mutable state (each model source runs on its own split
     substream), so blocked advancement is bit-identical to per-slot
     interleaving — with or without a pool, at any domain count.

     The one consumer that needs strict lock-step is a [probe] that
     terminates the run by raising (the importance sampler's
     first-passage cutoff): its sources and likelihood accumulators
     must not advance past the crossing slot, so a probed pool-less
     run stages one slot at a time, exactly as before this kernel
     existed. *)
  let block =
    match (probe, pool) with Some _, None -> 1 | _ -> Stdlib.min prefetch_slots slots
  in
  (* Snapshots only land on staging points, so a block longer than the
     requested cadence would silently skip them (a whole small run can
     be one block). Capping the block at [every] is bitwise-free:
     block size never enters the arithmetic. *)
  let block =
    match checkpoint with
    | Some ck -> Stdlib.max 1 (Stdlib.min block ck.every)
    | None -> block
  in
  let wbuf = Array.make (block * n) 0.0 in
  let cbuf = Array.make (block * n) 0 in
  (* A source whose block pull comes up short (the block analogue of
     raising [Source.End_of_stream]) departs cleanly: it contributes
     zero work from that slot on and the run continues with the
     remaining sources. Each source's flags and staging region are
     written only by the task that owns the source, so the pooled
     prefetch stays race-free. *)
  let fill_source t0 bs i =
    let off = i * block in
    if departed.(i) then begin
      Array.fill wbuf off bs 0.0;
      Array.fill cbuf off bs 0
    end
    else
      let f = Source.next_block sources.(i) wbuf cbuf ~off ~len:bs in
      if f < bs then begin
        departed.(i) <- true;
        departed_at.(i) <- t0 + f;
        Array.fill wbuf (off + f) (bs - f) 0.0;
        Array.fill cbuf (off + f) (bs - f) 0
      end
  in
  let cur_t0 = ref 0 in
  let cur_bs = ref 0 in
  let dispatch =
    match pool with
    | None -> fun () -> for i = 0 to n - 1 do fill_source !cur_t0 !cur_bs i done
    | Some p ->
      (* One prebuilt item per source: the fan-out recurs every
         [block] slots, so the item closures are compiled once. *)
      Ss_parallel.Pool.static_for p ~n (fun i -> fill_source !cur_t0 !cur_bs i)
  in
  let base = ref 0 in
  let filled = ref 0 in
  let works = Array.make n 0.0 in
  let classes = Array.make n 0 in
  let class_sums = Array.make max_classes 0.0 in
  let class_scale = Array.make max_classes 1.0 in
  let class_adm = Array.make max_classes 0.0 in
  let offered = Array.make n 0.0 in
  let admitted = Array.make n 0.0 in
  let lost = Array.make n 0.0 in
  let peak = Array.make n 0.0 in
  let corrupt = Array.make n 0 in
  let throttled = Array.make n 0.0 in
  let discarded = Array.make n 0.0 in
  let queue_stats = Online.create () in
  (* Quantile estimators as (probability, estimator) arrays: the hot
     loop indexes them with plain [for] loops instead of [List.iter]
     closures (a closure capture per slot). *)
  let q_quant = Array.of_list (List.map (fun p -> (p, Online.P2.create ~p)) quantiles) in
  let d_quant = Array.of_list (List.map (fun p -> (p, Online.P2.create ~p)) quantiles) in
  let nq = Array.length q_quant in
  (* Per-class virtual-delay tracking: class backlogs follow the same
     arrivals-then-service recursion as [q] (their sum replays it),
     kept strictly apart from the Lindley state so the queue floats
     stay bit-identical to runs that never asked for class delays. *)
  let class_backlog = Array.make max_classes 0.0 in
  let class_quant : (float * Online.P2.t) array option array = Array.make max_classes None in
  let top_class = ref (-1) in
  let thr = Array.of_list thresholds in
  let thr_hits = Array.make (Array.length thr) 0 in
  (* Opt-in per-source service/delay trajectory (the hook the ABR
     scenario layer and the --csv trajectory rows consume). The
     per-(class, source) backlog partition below refines the
     aggregate class replay: each slot's admitted work is credited to
     its source's cell, and each class's served work is distributed
     over the cells proportionally to their share of the class
     backlog (the fluid processor-sharing split within a priority
     class). Everything here is derived state, written only when a
     sink is present, so runs without one execute the identical float
     sequence — trajectory observation never perturbs the report. *)
  let has_traj = trajectory <> None in
  let traj_served = if has_traj then Array.make n 0.0 else [||] in
  let traj_delay = if has_traj then Array.make n 0.0 else [||] in
  let traj_cls = if has_traj then Array.make (max_classes * n) 0.0 else [||] in
  let traj_prefix = if has_traj then Array.make max_classes 0.0 else [||] in
  let st = { q = 0.0; served = 0.0; adm = 0.0; room = 0.0; rem = 0.0; prefix = 0.0 } in
  let es =
    {
      es_sources = sources;
      es_police = police;
      es_slots = slots;
      es_service = service;
      es_buffer = buffer;
      es_quantiles = quantiles;
      es_departed = departed;
      es_departed_at = departed_at;
      es_offered = offered;
      es_admitted = admitted;
      es_lost = lost;
      es_peak = peak;
      es_corrupt = corrupt;
      es_throttled = throttled;
      es_discarded = discarded;
      es_st = st;
      es_queue_stats = queue_stats;
      es_q_quant = q_quant;
      es_d_quant = d_quant;
      es_class_backlog = class_backlog;
      es_class_quant = class_quant;
      es_top_class = top_class;
      es_thr_hits = thr_hits;
      es_traj_cls = traj_cls;
    }
  in
  let t0 = match resume with None -> 0 | Some r -> restore_engine es r in
  base := t0;
  let last_ck = ref t0 in
  for t = t0 to slots - 1 do
    if t >= !base + !filled then begin
      (* Every source sits exactly at slot [t] here — the only points
         where a snapshot captures a consistent whole-run state. *)
      (match checkpoint with
      | Some ck when t - !last_ck >= ck.every ->
        last_ck := t;
        ck.save ~slot:t (save_engine es ~t)
      | _ -> ());
      base := t;
      let bs = Stdlib.min block (slots - t) in
      filled := bs;
      cur_t0 := t;
      cur_bs := bs;
      dispatch ()
    end;
    let boff = t - !base in
    let max_class = ref 0 in
    for i = 0 to n - 1 do
      let w0 = Array.unsafe_get wbuf ((i * block) + boff) in
      let c = Array.unsafe_get cbuf ((i * block) + boff) in
      (* Graceful degradation: corrupt work (NaN, negative, infinite)
         must not crash the run or poison the Lindley recursion — it
         is zeroed, counted against the source, and reported to the
         policer (which evicts repeat offenders). [w0 <> w0] is the
         (allocation-free) NaN test. *)
      let was_corrupt = w0 <> w0 || w0 < 0.0 || w0 = infinity in
      let w =
        if was_corrupt then begin
          corrupt.(i) <- corrupt.(i) + 1;
          (match police with Some p -> Police.note_corrupt p ~slot:t i | None -> ());
          0.0
        end
        else w0
      in
      if c < 0 || c >= max_classes then
        invalid_arg (Printf.sprintf "Mux.run: source %s yielded class %d" sources.(i).Source.name c);
      (* Each branch writes its (work, class) outcome straight into
         [works]/[classes] — a cross-branch tuple here would allocate
         every slot. *)
      (match police with
      | None ->
        works.(i) <- w;
        classes.(i) <- c
      | Some p ->
        if Police.evicted p i then begin
          discarded.(i) <- discarded.(i) +. w;
          works.(i) <- 0.0;
          classes.(i) <- c
        end
        else begin
          (* The policer judges the work the source tried to send;
             the buffer sees the throttled remainder. Corrupt slots
             went to [note_corrupt] instead — a NaN would poison
             the moment estimates. *)
          if not was_corrupt then Police.observe p ~slot:t i w;
          let cap = Police.cap p i in
          if w > cap then begin
            throttled.(i) <- throttled.(i) +. (w -. cap);
            works.(i) <- cap
          end
          else works.(i) <- w;
          let d = Police.demotion p i in
          classes.(i) <- (if d = 0 then c else Stdlib.min (max_classes - 1) (c + d))
        end);
      let w = works.(i) in
      let c = classes.(i) in
      offered.(i) <- offered.(i) +. w;
      if w > peak.(i) then peak.(i) <- w;
      if c > !max_class then max_class := c;
      class_sums.(c) <- class_sums.(c) +. w
    done;
    if !max_class > !top_class then begin
      (* Estimators exist for classes up to the highest one seen so
         far and are fed from that slot on. *)
      for c = !top_class + 1 to !max_class do
        class_quant.(c) <-
          Some (Array.of_list (List.map (fun p -> (p, Online.P2.create ~p)) quantiles))
      done;
      top_class := !max_class
    end;
    st.adm <- 0.0;
    if buffer = infinity then begin
      for i = 0 to n - 1 do
        st.adm <- st.adm +. works.(i);
        admitted.(i) <- admitted.(i) +. works.(i)
      done;
      for c = 0 to !max_class do
        class_adm.(c) <- class_sums.(c);
        class_sums.(c) <- 0.0
      done
    end
    else begin
      (* Work served during the slot frees space for the slot's own
         arrivals; classes are admitted in strict priority order and
         a class that does not fit shares the remaining room
         proportionally to offered work. *)
      st.room <- fmax 0.0 (buffer +. service -. st.q);
      for c = 0 to !max_class do
        let s = class_sums.(c) in
        let f =
          if s <= 0.0 then 0.0 else if s <= st.room then 1.0 else st.room /. s
        in
        class_scale.(c) <- f;
        st.room <- fmax 0.0 (st.room -. (s *. f));
        class_adm.(c) <- s *. f;
        class_sums.(c) <- 0.0
      done;
      for i = 0 to n - 1 do
        let w = works.(i) in
        let a = w *. class_scale.(classes.(i)) in
        st.adm <- st.adm +. a;
        admitted.(i) <- admitted.(i) +. a;
        lost.(i) <- lost.(i) +. (w -. a)
      done
    end;
    (* Per-slot admitted work per source: in the finite-buffer branch
       [class_scale] holds this slot's admission fraction per class;
       with an unbounded buffer it keeps its initial all-ones value,
       so the same expression covers both. *)
    if has_traj then
      for i = 0 to n - 1 do
        traj_served.(i) <- 0.0;
        let a = works.(i) *. class_scale.(classes.(i)) in
        let idx = (classes.(i) * n) + i in
        traj_cls.(idx) <- traj_cls.(idx) +. a
      done;
    st.served <- st.served +. fmin service (st.q +. st.adm);
    st.q <- fmax 0.0 (st.q +. st.adm -. service);
    (* Replay the slot on the class backlogs: arrivals, then strict
       priority service of the slot's capacity. *)
    st.rem <- service;
    for c = 0 to !top_class do
      let b = class_backlog.(c) +. class_adm.(c) in
      class_adm.(c) <- 0.0;
      let take = fmin st.rem b in
      class_backlog.(c) <- b -. take;
      st.rem <- st.rem -. take;
      if has_traj && take > 0.0 then begin
        (* [take > 0] implies [b > 0]. Proportional split of the
           class's served work over its sources' backlog cells; with
           [take = b] the cells drain to exactly zero. *)
        let frac = take /. b in
        let base = c * n in
        for i = 0 to n - 1 do
          let v = traj_cls.(base + i) in
          if v > 0.0 then begin
            let s = v *. frac in
            traj_served.(i) <- traj_served.(i) +. s;
            traj_cls.(base + i) <- v -. s
          end
        done
      end
    done;
    st.prefix <- 0.0;
    for c = 0 to !top_class do
      st.prefix <- st.prefix +. class_backlog.(c);
      if has_traj then traj_prefix.(c) <- st.prefix;
      match class_quant.(c) with
      | Some qs ->
        for j = 0 to Array.length qs - 1 do
          Online.P2.add (snd qs.(j)) (st.prefix /. service)
        done
      | None -> ()
    done;
    (match trajectory with
    | None -> ()
    | Some f ->
      (* A source's virtual delay is the post-service backlog of
         classes at or above its current priority, over service —
         the same quantity the per-class quantile estimators track,
         sampled at the source's class of this slot. *)
      for i = 0 to n - 1 do
        traj_delay.(i) <- traj_prefix.(classes.(i)) /. service
      done;
      f ~slot:t ~served:traj_served ~delays:traj_delay);
    Online.add queue_stats st.q;
    for j = 0 to nq - 1 do
      Online.P2.add (snd q_quant.(j)) st.q
    done;
    for j = 0 to nq - 1 do
      Online.P2.add (snd d_quant.(j)) (st.q /. service)
    done;
    for j = 0 to Array.length thr - 1 do
      if st.q > thr.(j) then thr_hits.(j) <- thr_hits.(j) + 1
    done;
    match probe with None -> () | Some f -> f t st.q
  done;
  let fslots = float_of_int slots in
  let total_offered = Array.fold_left ( +. ) 0.0 offered in
  let total_lost = Array.fold_left ( +. ) 0.0 lost in
  {
    slots;
    service;
    buffer;
    offered_utilization = total_offered /. fslots /. service;
    carried_utilization = st.served /. (service *. fslots);
    loss_fraction = (if total_offered > 0.0 then total_lost /. total_offered else 0.0);
    mean_queue = Online.mean queue_stats;
    max_queue = Online.max queue_stats;
    queue_quantiles =
      Array.to_list (Array.map (fun (p, p2) -> (p, Online.P2.quantile p2)) q_quant);
    delay_quantiles =
      Array.to_list (Array.map (fun (p, p2) -> (p, Online.P2.quantile p2)) d_quant);
    class_delay_quantiles =
      (let acc = ref [] in
       for c = !top_class downto 0 do
         match class_quant.(c) with
         | Some qs when Array.for_all (fun (_, p2) -> Online.P2.count p2 > 0) qs ->
           acc :=
             (c, Array.to_list (Array.map (fun (p, p2) -> (p, Online.P2.quantile p2)) qs))
             :: !acc
         | _ -> ()
       done;
       !acc);
    overflow =
      List.mapi (fun j b -> (b, float_of_int thr_hits.(j) /. fslots)) thresholds;
    per_source =
      Array.init n (fun i ->
          {
            name = sources.(i).Source.name;
            offered = offered.(i);
            admitted = admitted.(i);
            lost = lost.(i);
            loss_fraction = (if offered.(i) > 0.0 then lost.(i) /. offered.(i) else 0.0);
            mean_rate = offered.(i) /. fslots;
            peak_rate = peak.(i);
            corrupt_slots = corrupt.(i);
            throttled = throttled.(i);
            discarded = discarded.(i);
            departed_at = (if departed_at.(i) < 0 then None else Some departed_at.(i));
          });
  }

(* ------------------------------------------------------------------ *)
(* Sharded engine                                                      *)
(* ------------------------------------------------------------------ *)

(* Per-domain sub-muxes. The N sources are partitioned into [shards]
   contiguous shards (shard s owns [s*n/shards, (s+1)*n/shards));
   each shard advances all its sources a whole block of slots through
   their block pulls — into a source-major region only it writes —
   then transposes its columns of the block into slot-major rows.
   Shards synchronize only at the per-block {!Ss_parallel.Barrier};
   there is no per-slot or per-source cross-domain traffic.

   The sequential admission loop then consumes the slot-major rows:
   slot t's N arrivals are contiguous in memory, where the reference
   engine strides by [block] (one cache line per source per slot once
   N is large). That layout change — plus fusing the unbounded-buffer
   admission pass into the accounting pass — is the whole single-
   domain speedup; the arithmetic is the reference engine's statement
   sequence verbatim.

   Bit-identity, by construction, at any (shards, domains, block):
   shards only decide WHICH task pulls a source's block and restages
   it — per-source pull order is unchanged, staged values are copied,
   never combined — and every floating-point reduction (class sums,
   admitted work, Lindley step, quantiles) happens on the caller in
   pinned source order, identical to the reference engine. Integer
   per-source state merged at the barrier (departure flags and slots)
   is written only by the owning shard. *)
let run_sharded ?pool ~shards ~buffer ~thresholds ~quantiles ?police ?trajectory ?checkpoint
    ?resume ~service ~slots sources =
  if slots <= 0 then invalid_arg "Mux.run: slots <= 0";
  validate_checkpoint ?checkpoint ?resume sources;
  if service <= 0.0 then invalid_arg "Mux.run: service <= 0";
  if buffer < 0.0 then invalid_arg "Mux.run: buffer < 0";
  let n = Array.length sources in
  if n = 0 then invalid_arg "Mux.run: no sources";
  List.iter (fun b -> if b < 0.0 then invalid_arg "Mux.run: negative threshold") thresholds;
  (match police with
  | Some p when Police.size p <> n -> invalid_arg "Mux.run: policer sized for different sources"
  | _ -> ());
  let nshards = Stdlib.min shards n in
  let block =
    Stdlib.min slots (Stdlib.max 8 (Stdlib.min max_sharded_block (staging_budget / n)))
  in
  (* See the reference engine: a block longer than the checkpoint
     cadence would skip every snapshot point. Bitwise-free cap. *)
  let block =
    match checkpoint with
    | Some ck -> Stdlib.max 1 (Stdlib.min block ck.every)
    | None -> block
  in
  let departed = Array.make n false in
  let departed_at = Array.make n (-1) in
  (* Source-major staging (shard-local writes: source i owns
     [i*sstride .. i*sstride + block - 1]) and its slot-major
     transpose (slot b of the block owns [b*rstride .. b*rstride +
     n - 1]). Both strides are padded past the logical row length:
     block and n are routinely powers of two, and an exact
     power-of-two byte stride makes every transpose-tile row alias
     the same cache sets (the 8 KB-stride pathology), turning the
     tiled transpose into pure conflict misses. One line of slack
     breaks the aliasing; the pad cells are never read. *)
  let sstride = block + 8 in
  let rstride = n + 8 in
  let wbuf = Array.make (sstride * n) 0.0 in
  let cbuf = Array.make (sstride * n) 0 in
  let wrow = Array.make (block * rstride) 0.0 in
  let crow = Array.make (block * rstride) 0 in
  let fill_source t0 bs i =
    let off = i * sstride in
    if departed.(i) then begin
      Array.fill wbuf off bs 0.0;
      Array.fill cbuf off bs 0
    end
    else
      let f = Source.next_block sources.(i) wbuf cbuf ~off ~len:bs in
      if f < bs then begin
        departed.(i) <- true;
        departed_at.(i) <- t0 + f;
        Array.fill wbuf (off + f) (bs - f) 0.0;
        Array.fill cbuf (off + f) (bs - f) 0
      end
  in
  let shard_lo = Array.init (nshards + 1) (fun s -> s * n / nshards) in
  let cur_t0 = ref 0 in
  let cur_bs = ref 0 in
  (* Per-shard, per-block: did every staged slot carry class 0? The
     overwhelmingly common single-class case then skips the class
     transpose (and the central loop skips the class row entirely) —
     the staged class values are all equal, so nothing observable
     depends on reading them. [crow_zeroed] is the invariant that a
     shard's crow columns currently hold 0, letting consecutive
     all-class-0 blocks skip even the zero-fill. *)
  let shard_all0 = Array.make nshards false in
  let crow_zeroed = Array.make nshards false in
  (* One task per shard per block: pull every owned source, then
     restage the shard's columns slot-major. The transpose is tiled
     so each cache line of the source-major stage is read once and
     each line of the slot-major stage written once, instead of one
     miss per (source, slot). Neighbor shards share row cache lines
     only at their column boundary — bounded false sharing, no
     overlapping writes. *)
  let tile = 32 in
  let shard_task s =
    let t0 = !cur_t0 and bs = !cur_bs in
    let lo = shard_lo.(s) and hi = shard_lo.(s + 1) in
    let all0 = ref true in
    (* Fill, class-scan, and transpose one [tile]-wide group of
       sources at a time so the scan and the transpose read the
       freshly staged segments while they are still cache-hot,
       instead of sweeping the whole multi-megabyte stage cold three
       times per block. *)
    let i0 = ref lo in
    while !i0 < hi do
      let i1 = Stdlib.min hi (!i0 + tile) in
      for i = !i0 to i1 - 1 do
        fill_source t0 bs i
      done;
      for i = !i0 to i1 - 1 do
        let off = i * sstride in
        let z = ref true in
        for b = 0 to bs - 1 do
          if Array.unsafe_get cbuf (off + b) <> 0 then z := false
        done;
        if not !z then all0 := false
      done;
      let b0 = ref 0 in
      while !b0 < bs do
        let b1 = Stdlib.min bs (!b0 + tile) in
        for b = !b0 to b1 - 1 do
          let row = b * rstride in
          for i = !i0 to i1 - 1 do
            Array.unsafe_set wrow (row + i) (Array.unsafe_get wbuf ((i * sstride) + b))
          done
        done;
        b0 := b1
      done;
      i0 := i1
    done;
    shard_all0.(s) <- !all0;
    if !all0 then begin
      if not crow_zeroed.(s) then begin
        for b = 0 to block - 1 do
          Array.fill crow ((b * rstride) + lo) (hi - lo) 0
        done;
        crow_zeroed.(s) <- true
      end
    end
    else begin
      (* Rare multi-class block: restage the class row for the whole
         shard range. Cold re-read of cbuf, but only workloads whose
         classes actually vary pay for it. *)
      crow_zeroed.(s) <- false;
      let i0 = ref lo in
      while !i0 < hi do
        let i1 = Stdlib.min hi (!i0 + tile) in
        let b0 = ref 0 in
        while !b0 < bs do
          let b1 = Stdlib.min bs (!b0 + tile) in
          for b = !b0 to b1 - 1 do
            let row = b * rstride in
            for i = !i0 to i1 - 1 do
              Array.unsafe_set crow (row + i) (Array.unsafe_get cbuf ((i * sstride) + b))
            done
          done;
          b0 := b1
        done;
        i0 := i1
      done
    end
  in
  let barrier = Ss_parallel.Barrier.make ?pool ~tasks:nshards shard_task in
  let base = ref 0 in
  let filled = ref 0 in
  let works = Array.make n 0.0 in
  let classes = Array.make n 0 in
  let class_sums = Array.make max_classes 0.0 in
  let class_scale = Array.make max_classes 1.0 in
  let class_adm = Array.make max_classes 0.0 in
  let offered = Array.make n 0.0 in
  let admitted = Array.make n 0.0 in
  let lost = Array.make n 0.0 in
  let peak = Array.make n 0.0 in
  let corrupt = Array.make n 0 in
  let throttled = Array.make n 0.0 in
  let discarded = Array.make n 0.0 in
  let queue_stats = Online.create () in
  let q_quant = Array.of_list (List.map (fun p -> (p, Online.P2.create ~p)) quantiles) in
  let d_quant = Array.of_list (List.map (fun p -> (p, Online.P2.create ~p)) quantiles) in
  let nq = Array.length q_quant in
  let class_backlog = Array.make max_classes 0.0 in
  let class_quant : (float * Online.P2.t) array option array = Array.make max_classes None in
  let top_class = ref (-1) in
  let thr = Array.of_list thresholds in
  let thr_hits = Array.make (Array.length thr) 0 in
  let has_traj = trajectory <> None in
  let traj_served = if has_traj then Array.make n 0.0 else [||] in
  let traj_delay = if has_traj then Array.make n 0.0 else [||] in
  let traj_cls = if has_traj then Array.make (max_classes * n) 0.0 else [||] in
  let traj_prefix = if has_traj then Array.make max_classes 0.0 else [||] in
  let unbounded = buffer = infinity in
  let st = { q = 0.0; served = 0.0; adm = 0.0; room = 0.0; rem = 0.0; prefix = 0.0 } in
  (* Fast lane: when a whole staged block carried only class 0 and no
     per-source machinery (policing, finite-buffer replay, trajectory
     capture) needs the staged values later, the accounting pass can
     skip the class row and the dead works/classes stores. Every
     floating-point addition it performs is the same value added to
     the same accumulator in the same source order as the general
     pass, so the lane is bitwise invisible. *)
  let fast_ok = Option.is_none police && unbounded && not has_traj in
  let blk_all0 = ref false in
  let es =
    {
      es_sources = sources;
      es_police = police;
      es_slots = slots;
      es_service = service;
      es_buffer = buffer;
      es_quantiles = quantiles;
      es_departed = departed;
      es_departed_at = departed_at;
      es_offered = offered;
      es_admitted = admitted;
      es_lost = lost;
      es_peak = peak;
      es_corrupt = corrupt;
      es_throttled = throttled;
      es_discarded = discarded;
      es_st = st;
      es_queue_stats = queue_stats;
      es_q_quant = q_quant;
      es_d_quant = d_quant;
      es_class_backlog = class_backlog;
      es_class_quant = class_quant;
      es_top_class = top_class;
      es_thr_hits = thr_hits;
      es_traj_cls = traj_cls;
    }
  in
  let t0 = match resume with None -> 0 | Some r -> restore_engine es r in
  base := t0;
  let last_ck = ref t0 in
  for t = t0 to slots - 1 do
    if t >= !base + !filled then begin
      (* Same consistent point as the reference engine: all shards
         idle, every source exactly at slot [t]. The snapshot is
         engine- and shard-count-independent — a run checkpointed at
         4 shards resumes bitwise at 1, and vice versa. *)
      (match checkpoint with
      | Some ck when t - !last_ck >= ck.every ->
        last_ck := t;
        ck.save ~slot:t (save_engine es ~t)
      | _ -> ());
      base := t;
      let bs = Stdlib.min block (slots - t) in
      filled := bs;
      cur_t0 := t;
      cur_bs := bs;
      Ss_parallel.Barrier.run barrier;
      blk_all0 :=
        (let ok = ref true in
         for s = 0 to nshards - 1 do
           if not shard_all0.(s) then ok := false
         done;
         !ok)
    end;
    let row = (t - !base) * rstride in
    st.adm <- 0.0;
    if fast_ok && !blk_all0 then begin
      for i = 0 to n - 1 do
        let w0 = Array.unsafe_get wrow (row + i) in
        let w =
          if w0 <> w0 || w0 < 0.0 || w0 = infinity then begin
            corrupt.(i) <- corrupt.(i) + 1;
            0.0
          end
          else w0
        in
        offered.(i) <- offered.(i) +. w;
        if w > peak.(i) then peak.(i) <- w;
        class_sums.(0) <- class_sums.(0) +. w;
        st.adm <- st.adm +. w;
        admitted.(i) <- admitted.(i) +. w
      done;
      if !top_class < 0 then begin
        class_quant.(0) <-
          Some (Array.of_list (List.map (fun p -> (p, Online.P2.create ~p)) quantiles));
        top_class := 0
      end;
      class_adm.(0) <- class_sums.(0);
      class_sums.(0) <- 0.0
    end
    else begin
    let max_class = ref 0 in
    (* Accounting pass over slot t's contiguous row. Statement-for-
       statement the reference engine's pass; under an unbounded
       buffer the admission accumulation (reference pass two) is
       fused in — each accumulator still sees its additions in the
       same source order, so the fusion is bitwise invisible. *)
    for i = 0 to n - 1 do
      let w0 = Array.unsafe_get wrow (row + i) in
      let c = Array.unsafe_get crow (row + i) in
      let was_corrupt = w0 <> w0 || w0 < 0.0 || w0 = infinity in
      let w =
        if was_corrupt then begin
          corrupt.(i) <- corrupt.(i) + 1;
          (match police with Some p -> Police.note_corrupt p ~slot:t i | None -> ());
          0.0
        end
        else w0
      in
      if c < 0 || c >= max_classes then
        invalid_arg (Printf.sprintf "Mux.run: source %s yielded class %d" sources.(i).Source.name c);
      (match police with
      | None ->
        works.(i) <- w;
        classes.(i) <- c
      | Some p ->
        if Police.evicted p i then begin
          discarded.(i) <- discarded.(i) +. w;
          works.(i) <- 0.0;
          classes.(i) <- c
        end
        else begin
          if not was_corrupt then Police.observe p ~slot:t i w;
          let cap = Police.cap p i in
          if w > cap then begin
            throttled.(i) <- throttled.(i) +. (w -. cap);
            works.(i) <- cap
          end
          else works.(i) <- w;
          let d = Police.demotion p i in
          classes.(i) <- (if d = 0 then c else Stdlib.min (max_classes - 1) (c + d))
        end);
      let w = works.(i) in
      let c = classes.(i) in
      offered.(i) <- offered.(i) +. w;
      if w > peak.(i) then peak.(i) <- w;
      if c > !max_class then max_class := c;
      class_sums.(c) <- class_sums.(c) +. w;
      if unbounded then begin
        st.adm <- st.adm +. w;
        admitted.(i) <- admitted.(i) +. w
      end
    done;
    if !max_class > !top_class then begin
      for c = !top_class + 1 to !max_class do
        class_quant.(c) <-
          Some (Array.of_list (List.map (fun p -> (p, Online.P2.create ~p)) quantiles))
      done;
      top_class := !max_class
    end;
    if unbounded then
      for c = 0 to !max_class do
        class_adm.(c) <- class_sums.(c);
        class_sums.(c) <- 0.0
      done
    else begin
      st.room <- fmax 0.0 (buffer +. service -. st.q);
      for c = 0 to !max_class do
        let s = class_sums.(c) in
        let f =
          if s <= 0.0 then 0.0 else if s <= st.room then 1.0 else st.room /. s
        in
        class_scale.(c) <- f;
        st.room <- fmax 0.0 (st.room -. (s *. f));
        class_adm.(c) <- s *. f;
        class_sums.(c) <- 0.0
      done;
      for i = 0 to n - 1 do
        let w = works.(i) in
        let a = w *. class_scale.(classes.(i)) in
        st.adm <- st.adm +. a;
        admitted.(i) <- admitted.(i) +. a;
        lost.(i) <- lost.(i) +. (w -. a)
      done
    end
    end;
    if has_traj then
      for i = 0 to n - 1 do
        traj_served.(i) <- 0.0;
        let a = works.(i) *. class_scale.(classes.(i)) in
        let idx = (classes.(i) * n) + i in
        traj_cls.(idx) <- traj_cls.(idx) +. a
      done;
    st.served <- st.served +. fmin service (st.q +. st.adm);
    st.q <- fmax 0.0 (st.q +. st.adm -. service);
    st.rem <- service;
    for c = 0 to !top_class do
      let b = class_backlog.(c) +. class_adm.(c) in
      class_adm.(c) <- 0.0;
      let take = fmin st.rem b in
      class_backlog.(c) <- b -. take;
      st.rem <- st.rem -. take;
      if has_traj && take > 0.0 then begin
        let frac = take /. b in
        let base = c * n in
        for i = 0 to n - 1 do
          let v = traj_cls.(base + i) in
          if v > 0.0 then begin
            let s = v *. frac in
            traj_served.(i) <- traj_served.(i) +. s;
            traj_cls.(base + i) <- v -. s
          end
        done
      end
    done;
    st.prefix <- 0.0;
    for c = 0 to !top_class do
      st.prefix <- st.prefix +. class_backlog.(c);
      if has_traj then traj_prefix.(c) <- st.prefix;
      match class_quant.(c) with
      | Some qs ->
        for j = 0 to Array.length qs - 1 do
          Online.P2.add (snd qs.(j)) (st.prefix /. service)
        done
      | None -> ()
    done;
    (match trajectory with
    | None -> ()
    | Some f ->
      for i = 0 to n - 1 do
        traj_delay.(i) <- traj_prefix.(classes.(i)) /. service
      done;
      f ~slot:t ~served:traj_served ~delays:traj_delay);
    Online.add queue_stats st.q;
    for j = 0 to nq - 1 do
      Online.P2.add (snd q_quant.(j)) st.q
    done;
    for j = 0 to nq - 1 do
      Online.P2.add (snd d_quant.(j)) (st.q /. service)
    done;
    for j = 0 to Array.length thr - 1 do
      if st.q > thr.(j) then thr_hits.(j) <- thr_hits.(j) + 1
    done
  done;
  let fslots = float_of_int slots in
  let total_offered = Array.fold_left ( +. ) 0.0 offered in
  let total_lost = Array.fold_left ( +. ) 0.0 lost in
  {
    slots;
    service;
    buffer;
    offered_utilization = total_offered /. fslots /. service;
    carried_utilization = st.served /. (service *. fslots);
    loss_fraction = (if total_offered > 0.0 then total_lost /. total_offered else 0.0);
    mean_queue = Online.mean queue_stats;
    max_queue = Online.max queue_stats;
    queue_quantiles =
      Array.to_list (Array.map (fun (p, p2) -> (p, Online.P2.quantile p2)) q_quant);
    delay_quantiles =
      Array.to_list (Array.map (fun (p, p2) -> (p, Online.P2.quantile p2)) d_quant);
    class_delay_quantiles =
      (let acc = ref [] in
       for c = !top_class downto 0 do
         match class_quant.(c) with
         | Some qs when Array.for_all (fun (_, p2) -> Online.P2.count p2 > 0) qs ->
           acc :=
             (c, Array.to_list (Array.map (fun (p, p2) -> (p, Online.P2.quantile p2)) qs))
             :: !acc
         | _ -> ()
       done;
       !acc);
    overflow =
      List.mapi (fun j b -> (b, float_of_int thr_hits.(j) /. fslots)) thresholds;
    per_source =
      Array.init n (fun i ->
          {
            name = sources.(i).Source.name;
            offered = offered.(i);
            admitted = admitted.(i);
            lost = lost.(i);
            loss_fraction = (if offered.(i) > 0.0 then lost.(i) /. offered.(i) else 0.0);
            mean_rate = offered.(i) /. fslots;
            peak_rate = peak.(i);
            corrupt_slots = corrupt.(i);
            throttled = throttled.(i);
            discarded = discarded.(i);
            departed_at = (if departed_at.(i) < 0 then None else Some departed_at.(i));
          });
  }

let run ?pool ?shards ?(buffer = infinity) ?(thresholds = []) ?(quantiles = [ 0.5; 0.9; 0.99 ])
    ?probe ?police ?trajectory ?checkpoint ?resume ~service ~slots sources =
  (match shards with
  | Some s when s < 1 -> invalid_arg "Mux.run: shards < 1"
  | _ -> ());
  match probe with
  | Some _ ->
    (* First-passage probes (the importance sampler's cutoff) need
       the strict per-slot lock-step of the reference engine: a
       probed run must be able to stop with no source advanced past
       the crossing slot. Sharding is refused rather than silently
       degraded. *)
    (match shards with
    | Some s when s > 1 -> invalid_arg "Mux.run: ~probe requires shards = 1 (strict lock-step)"
    | _ -> ());
    run_reference ?pool ~buffer ~thresholds ~quantiles ?probe ?police ?trajectory ?checkpoint
      ?resume ~service ~slots sources
  | None ->
    let shards =
      match shards with
      | Some s -> s
      | None -> (match pool with Some p -> Ss_parallel.Pool.size p | None -> 1)
    in
    run_sharded ?pool ~shards ~buffer ~thresholds ~quantiles ?police ?trajectory ?checkpoint
      ?resume ~service ~slots sources

(* ------------------------------------------------------------------ *)
(* Report equality                                                     *)
(* ------------------------------------------------------------------ *)

let feq a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let pair_list_eq xs ys =
  List.length xs = List.length ys
  && List.for_all2 (fun (a1, b1) (a2, b2) -> feq a1 a2 && feq b1 b2) xs ys

let equal_source_report a b =
  String.equal a.name b.name && feq a.offered b.offered && feq a.admitted b.admitted
  && feq a.lost b.lost
  && feq a.loss_fraction b.loss_fraction
  && feq a.mean_rate b.mean_rate && feq a.peak_rate b.peak_rate
  && a.corrupt_slots = b.corrupt_slots
  && feq a.throttled b.throttled && feq a.discarded b.discarded
  && a.departed_at = b.departed_at

let equal_report a b =
  a.slots = b.slots && feq a.service b.service && feq a.buffer b.buffer
  && feq a.offered_utilization b.offered_utilization
  && feq a.carried_utilization b.carried_utilization
  && feq a.loss_fraction b.loss_fraction
  && feq a.mean_queue b.mean_queue && feq a.max_queue b.max_queue
  && pair_list_eq a.queue_quantiles b.queue_quantiles
  && pair_list_eq a.delay_quantiles b.delay_quantiles
  && List.length a.class_delay_quantiles = List.length b.class_delay_quantiles
  && List.for_all2
       (fun (c1, qs1) (c2, qs2) -> c1 = c2 && pair_list_eq qs1 qs2)
       a.class_delay_quantiles b.class_delay_quantiles
  && pair_list_eq a.overflow b.overflow
  && Array.length a.per_source = Array.length b.per_source
  && Array.for_all2 equal_source_report a.per_source b.per_source

let pp_report ppf r =
  let pct x = 100.0 *. x in
  Format.fprintf ppf "slots             %d@." r.slots;
  Format.fprintf ppf "service           %.1f work/slot@." r.service;
  (if r.buffer = infinity then Format.fprintf ppf "buffer            unbounded@."
   else Format.fprintf ppf "buffer            %.1f@." r.buffer);
  Format.fprintf ppf "offered load      %.1f%% of service@." (pct r.offered_utilization);
  Format.fprintf ppf "carried load      %.1f%% of service@." (pct r.carried_utilization);
  Format.fprintf ppf "loss fraction     %.4g@." r.loss_fraction;
  Format.fprintf ppf "mean queue        %.1f@." r.mean_queue;
  Format.fprintf ppf "max queue         %.1f@." r.max_queue;
  List.iter
    (fun (p, q) -> Format.fprintf ppf "queue q(%.2f)      %.1f@." p q)
    r.queue_quantiles;
  List.iter
    (fun (p, d) -> Format.fprintf ppf "delay q(%.2f)      %.2f slots@." p d)
    r.delay_quantiles;
  if List.length r.class_delay_quantiles > 1 then
    List.iter
      (fun (c, qs) ->
        List.iter
          (fun (p, d) ->
            Format.fprintf ppf "class %d delay q(%.2f)  %.2f slots@." c p d)
          qs)
      r.class_delay_quantiles;
  if r.overflow <> [] then begin
    Format.fprintf ppf "overflow:@.";
    List.iter
      (fun (b, p) ->
        Format.fprintf ppf "  Pr(Q > %8.0f)  %.5g  %s@." b p
          (if p > 0.0 then Printf.sprintf "(log10 %.3f)" (log10 p) else ""))
      r.overflow
  end;
  Format.fprintf ppf "per source:@.";
  Format.fprintf ppf "  %-12s  %12s  %12s  %10s  %10s@." "name" "offered" "lost"
    "loss-frac" "peak-rate";
  Array.iter
    (fun s ->
      Format.fprintf ppf "  %-12s  %12.4g  %12.4g  %10.4g  %10.4g@." s.name s.offered
        s.lost s.loss_fraction s.peak_rate)
    r.per_source;
  let troubled =
    Array.to_list r.per_source
    |> List.filter (fun s ->
           s.corrupt_slots > 0 || s.throttled > 0.0 || s.discarded > 0.0
           || s.departed_at <> None)
  in
  if troubled <> [] then begin
    Format.fprintf ppf "incidents:@.";
    Format.fprintf ppf "  %-12s  %8s  %12s  %12s  %10s@." "name" "corrupt" "throttled"
      "discarded" "departed";
    List.iter
      (fun s ->
        Format.fprintf ppf "  %-12s  %8d  %12.4g  %12.4g  %10s@." s.name s.corrupt_slots
          s.throttled s.discarded
          (match s.departed_at with None -> "-" | Some t -> string_of_int t))
      troubled
  end

module Online = Ss_stats.Online_stats

type source_report = {
  name : string;
  offered : float;
  admitted : float;
  lost : float;
  loss_fraction : float;
  mean_rate : float;
  peak_rate : float;
  corrupt_slots : int;
  throttled : float;
  discarded : float;
  departed_at : int option;
}

type report = {
  slots : int;
  service : float;
  buffer : float;
  offered_utilization : float;
  carried_utilization : float;
  loss_fraction : float;
  mean_queue : float;
  max_queue : float;
  queue_quantiles : (float * float) list;
  delay_quantiles : (float * float) list;
  class_delay_quantiles : (int * (float * float) list) list;
  overflow : (float * float) list;
  per_source : source_report array;
}

let max_classes = 64

(* Number of slots every source is advanced by (via its block pull)
   before the sequential Lindley/admission loop consumes them;
   amortizes both the per-batch pool synchronization and the
   per-block kernel setup over prefetch_slots * N slots. *)
let prefetch_slots = 256

(* All-float mutable record for the per-slot Lindley/admission state:
   float-only records are stored flat, so updating a field is an
   unboxed store — unlike [float ref], whose [:=] boxes a fresh float
   every assignment. This keeps the sequential admission loop free of
   per-slot allocation. *)
type slot_state = {
  mutable q : float;  (* Lindley queue *)
  mutable served : float;  (* total work served *)
  mutable adm : float;  (* work admitted this slot *)
  mutable room : float;  (* remaining admission room this slot *)
  mutable rem : float;  (* remaining service in the class replay *)
  mutable prefix : float;  (* class-backlog prefix sum *)
}

(* Monomorphic min/max: the polymorphic [Stdlib.min]/[Stdlib.max]
   box float arguments at every call. Identical to them for non-NaN
   floats, and every value reaching these is already sanitized. *)
let fmin (a : float) b = if a <= b then a else b
let fmax (a : float) b = if a >= b then a else b

let run ?pool ?(buffer = infinity) ?(thresholds = []) ?(quantiles = [ 0.5; 0.9; 0.99 ]) ?probe
    ?police ?trajectory ~service ~slots sources =
  if slots <= 0 then invalid_arg "Mux.run: slots <= 0";
  if service <= 0.0 then invalid_arg "Mux.run: service <= 0";
  if buffer < 0.0 then invalid_arg "Mux.run: buffer < 0";
  let n = Array.length sources in
  if n = 0 then invalid_arg "Mux.run: no sources";
  List.iter (fun b -> if b < 0.0 then invalid_arg "Mux.run: negative threshold") thresholds;
  (match police with
  | Some p when Police.size p <> n -> invalid_arg "Mux.run: policer sized for different sources"
  | _ -> ());
  let departed = Array.make n false in
  let departed_at = Array.make n (-1) in
  (* Source pulls are independent of the queue state, so every source
     is advanced [block] slots at a time through its block pull into
     a source-major staging buffer (source [i] owns the contiguous
     region [i*block .. i*block + block - 1]); the Lindley/admission
     loop below then consumes the staged slots sequentially. Every
     source still sees its slots in order, and sources never share
     mutable state (each model source runs on its own split
     substream), so blocked advancement is bit-identical to per-slot
     interleaving — with or without a pool, at any domain count.

     The one consumer that needs strict lock-step is a [probe] that
     terminates the run by raising (the importance sampler's
     first-passage cutoff): its sources and likelihood accumulators
     must not advance past the crossing slot, so a probed pool-less
     run stages one slot at a time, exactly as before this kernel
     existed. *)
  let block =
    match (probe, pool) with Some _, None -> 1 | _ -> Stdlib.min prefetch_slots slots
  in
  let wbuf = Array.make (block * n) 0.0 in
  let cbuf = Array.make (block * n) 0 in
  (* A source whose block pull comes up short (the block analogue of
     raising [Source.End_of_stream]) departs cleanly: it contributes
     zero work from that slot on and the run continues with the
     remaining sources. Each source's flags and staging region are
     written only by the task that owns the source, so the pooled
     prefetch stays race-free. *)
  let fill_source t0 bs i =
    let off = i * block in
    if departed.(i) then begin
      Array.fill wbuf off bs 0.0;
      Array.fill cbuf off bs 0
    end
    else
      let f = Source.next_block sources.(i) wbuf cbuf ~off ~len:bs in
      if f < bs then begin
        departed.(i) <- true;
        departed_at.(i) <- t0 + f;
        Array.fill wbuf (off + f) (bs - f) 0.0;
        Array.fill cbuf (off + f) (bs - f) 0
      end
  in
  let cur_t0 = ref 0 in
  let cur_bs = ref 0 in
  let dispatch =
    match pool with
    | None -> fun () -> for i = 0 to n - 1 do fill_source !cur_t0 !cur_bs i done
    | Some p ->
      (* One prebuilt item per source: the fan-out recurs every
         [block] slots, so the item closures are compiled once. *)
      Ss_parallel.Pool.static_for p ~n (fun i -> fill_source !cur_t0 !cur_bs i)
  in
  let base = ref 0 in
  let filled = ref 0 in
  let works = Array.make n 0.0 in
  let classes = Array.make n 0 in
  let class_sums = Array.make max_classes 0.0 in
  let class_scale = Array.make max_classes 1.0 in
  let class_adm = Array.make max_classes 0.0 in
  let offered = Array.make n 0.0 in
  let admitted = Array.make n 0.0 in
  let lost = Array.make n 0.0 in
  let peak = Array.make n 0.0 in
  let corrupt = Array.make n 0 in
  let throttled = Array.make n 0.0 in
  let discarded = Array.make n 0.0 in
  let queue_stats = Online.create () in
  (* Quantile estimators as (probability, estimator) arrays: the hot
     loop indexes them with plain [for] loops instead of [List.iter]
     closures (a closure capture per slot). *)
  let q_quant = Array.of_list (List.map (fun p -> (p, Online.P2.create ~p)) quantiles) in
  let d_quant = Array.of_list (List.map (fun p -> (p, Online.P2.create ~p)) quantiles) in
  let nq = Array.length q_quant in
  (* Per-class virtual-delay tracking: class backlogs follow the same
     arrivals-then-service recursion as [q] (their sum replays it),
     kept strictly apart from the Lindley state so the queue floats
     stay bit-identical to runs that never asked for class delays. *)
  let class_backlog = Array.make max_classes 0.0 in
  let class_quant : (float * Online.P2.t) array option array = Array.make max_classes None in
  let top_class = ref (-1) in
  let thr = Array.of_list thresholds in
  let thr_hits = Array.make (Array.length thr) 0 in
  (* Opt-in per-source service/delay trajectory (the hook the ABR
     scenario layer and the --csv trajectory rows consume). The
     per-(class, source) backlog partition below refines the
     aggregate class replay: each slot's admitted work is credited to
     its source's cell, and each class's served work is distributed
     over the cells proportionally to their share of the class
     backlog (the fluid processor-sharing split within a priority
     class). Everything here is derived state, written only when a
     sink is present, so runs without one execute the identical float
     sequence — trajectory observation never perturbs the report. *)
  let has_traj = trajectory <> None in
  let traj_served = if has_traj then Array.make n 0.0 else [||] in
  let traj_delay = if has_traj then Array.make n 0.0 else [||] in
  let traj_cls = if has_traj then Array.make (max_classes * n) 0.0 else [||] in
  let traj_prefix = if has_traj then Array.make max_classes 0.0 else [||] in
  let st = { q = 0.0; served = 0.0; adm = 0.0; room = 0.0; rem = 0.0; prefix = 0.0 } in
  for t = 0 to slots - 1 do
    if t >= !base + !filled then begin
      base := t;
      let bs = Stdlib.min block (slots - t) in
      filled := bs;
      cur_t0 := t;
      cur_bs := bs;
      dispatch ()
    end;
    let boff = t - !base in
    let max_class = ref 0 in
    for i = 0 to n - 1 do
      let w0 = Array.unsafe_get wbuf ((i * block) + boff) in
      let c = Array.unsafe_get cbuf ((i * block) + boff) in
      (* Graceful degradation: corrupt work (NaN, negative, infinite)
         must not crash the run or poison the Lindley recursion — it
         is zeroed, counted against the source, and reported to the
         policer (which evicts repeat offenders). [w0 <> w0] is the
         (allocation-free) NaN test. *)
      let was_corrupt = w0 <> w0 || w0 < 0.0 || w0 = infinity in
      let w =
        if was_corrupt then begin
          corrupt.(i) <- corrupt.(i) + 1;
          (match police with Some p -> Police.note_corrupt p ~slot:t i | None -> ());
          0.0
        end
        else w0
      in
      if c < 0 || c >= max_classes then
        invalid_arg (Printf.sprintf "Mux.run: source %s yielded class %d" sources.(i).Source.name c);
      (* Each branch writes its (work, class) outcome straight into
         [works]/[classes] — a cross-branch tuple here would allocate
         every slot. *)
      (match police with
      | None ->
        works.(i) <- w;
        classes.(i) <- c
      | Some p ->
        if Police.evicted p i then begin
          discarded.(i) <- discarded.(i) +. w;
          works.(i) <- 0.0;
          classes.(i) <- c
        end
        else begin
          (* The policer judges the work the source tried to send;
             the buffer sees the throttled remainder. Corrupt slots
             went to [note_corrupt] instead — a NaN would poison
             the moment estimates. *)
          if not was_corrupt then Police.observe p ~slot:t i w;
          let cap = Police.cap p i in
          if w > cap then begin
            throttled.(i) <- throttled.(i) +. (w -. cap);
            works.(i) <- cap
          end
          else works.(i) <- w;
          let d = Police.demotion p i in
          classes.(i) <- (if d = 0 then c else Stdlib.min (max_classes - 1) (c + d))
        end);
      let w = works.(i) in
      let c = classes.(i) in
      offered.(i) <- offered.(i) +. w;
      if w > peak.(i) then peak.(i) <- w;
      if c > !max_class then max_class := c;
      class_sums.(c) <- class_sums.(c) +. w
    done;
    if !max_class > !top_class then begin
      (* Estimators exist for classes up to the highest one seen so
         far and are fed from that slot on. *)
      for c = !top_class + 1 to !max_class do
        class_quant.(c) <-
          Some (Array.of_list (List.map (fun p -> (p, Online.P2.create ~p)) quantiles))
      done;
      top_class := !max_class
    end;
    st.adm <- 0.0;
    if buffer = infinity then begin
      for i = 0 to n - 1 do
        st.adm <- st.adm +. works.(i);
        admitted.(i) <- admitted.(i) +. works.(i)
      done;
      for c = 0 to !max_class do
        class_adm.(c) <- class_sums.(c);
        class_sums.(c) <- 0.0
      done
    end
    else begin
      (* Work served during the slot frees space for the slot's own
         arrivals; classes are admitted in strict priority order and
         a class that does not fit shares the remaining room
         proportionally to offered work. *)
      st.room <- fmax 0.0 (buffer +. service -. st.q);
      for c = 0 to !max_class do
        let s = class_sums.(c) in
        let f =
          if s <= 0.0 then 0.0 else if s <= st.room then 1.0 else st.room /. s
        in
        class_scale.(c) <- f;
        st.room <- fmax 0.0 (st.room -. (s *. f));
        class_adm.(c) <- s *. f;
        class_sums.(c) <- 0.0
      done;
      for i = 0 to n - 1 do
        let w = works.(i) in
        let a = w *. class_scale.(classes.(i)) in
        st.adm <- st.adm +. a;
        admitted.(i) <- admitted.(i) +. a;
        lost.(i) <- lost.(i) +. (w -. a)
      done
    end;
    (* Per-slot admitted work per source: in the finite-buffer branch
       [class_scale] holds this slot's admission fraction per class;
       with an unbounded buffer it keeps its initial all-ones value,
       so the same expression covers both. *)
    if has_traj then
      for i = 0 to n - 1 do
        traj_served.(i) <- 0.0;
        let a = works.(i) *. class_scale.(classes.(i)) in
        let idx = (classes.(i) * n) + i in
        traj_cls.(idx) <- traj_cls.(idx) +. a
      done;
    st.served <- st.served +. fmin service (st.q +. st.adm);
    st.q <- fmax 0.0 (st.q +. st.adm -. service);
    (* Replay the slot on the class backlogs: arrivals, then strict
       priority service of the slot's capacity. *)
    st.rem <- service;
    for c = 0 to !top_class do
      let b = class_backlog.(c) +. class_adm.(c) in
      class_adm.(c) <- 0.0;
      let take = fmin st.rem b in
      class_backlog.(c) <- b -. take;
      st.rem <- st.rem -. take;
      if has_traj && take > 0.0 then begin
        (* [take > 0] implies [b > 0]. Proportional split of the
           class's served work over its sources' backlog cells; with
           [take = b] the cells drain to exactly zero. *)
        let frac = take /. b in
        let base = c * n in
        for i = 0 to n - 1 do
          let v = traj_cls.(base + i) in
          if v > 0.0 then begin
            let s = v *. frac in
            traj_served.(i) <- traj_served.(i) +. s;
            traj_cls.(base + i) <- v -. s
          end
        done
      end
    done;
    st.prefix <- 0.0;
    for c = 0 to !top_class do
      st.prefix <- st.prefix +. class_backlog.(c);
      if has_traj then traj_prefix.(c) <- st.prefix;
      match class_quant.(c) with
      | Some qs ->
        for j = 0 to Array.length qs - 1 do
          Online.P2.add (snd qs.(j)) (st.prefix /. service)
        done
      | None -> ()
    done;
    (match trajectory with
    | None -> ()
    | Some f ->
      (* A source's virtual delay is the post-service backlog of
         classes at or above its current priority, over service —
         the same quantity the per-class quantile estimators track,
         sampled at the source's class of this slot. *)
      for i = 0 to n - 1 do
        traj_delay.(i) <- traj_prefix.(classes.(i)) /. service
      done;
      f ~slot:t ~served:traj_served ~delays:traj_delay);
    Online.add queue_stats st.q;
    for j = 0 to nq - 1 do
      Online.P2.add (snd q_quant.(j)) st.q
    done;
    for j = 0 to nq - 1 do
      Online.P2.add (snd d_quant.(j)) (st.q /. service)
    done;
    for j = 0 to Array.length thr - 1 do
      if st.q > thr.(j) then thr_hits.(j) <- thr_hits.(j) + 1
    done;
    match probe with None -> () | Some f -> f t st.q
  done;
  let fslots = float_of_int slots in
  let total_offered = Array.fold_left ( +. ) 0.0 offered in
  let total_lost = Array.fold_left ( +. ) 0.0 lost in
  {
    slots;
    service;
    buffer;
    offered_utilization = total_offered /. fslots /. service;
    carried_utilization = st.served /. (service *. fslots);
    loss_fraction = (if total_offered > 0.0 then total_lost /. total_offered else 0.0);
    mean_queue = Online.mean queue_stats;
    max_queue = Online.max queue_stats;
    queue_quantiles =
      Array.to_list (Array.map (fun (p, p2) -> (p, Online.P2.quantile p2)) q_quant);
    delay_quantiles =
      Array.to_list (Array.map (fun (p, p2) -> (p, Online.P2.quantile p2)) d_quant);
    class_delay_quantiles =
      (let acc = ref [] in
       for c = !top_class downto 0 do
         match class_quant.(c) with
         | Some qs when Array.for_all (fun (_, p2) -> Online.P2.count p2 > 0) qs ->
           acc :=
             (c, Array.to_list (Array.map (fun (p, p2) -> (p, Online.P2.quantile p2)) qs))
             :: !acc
         | _ -> ()
       done;
       !acc);
    overflow =
      List.mapi (fun j b -> (b, float_of_int thr_hits.(j) /. fslots)) thresholds;
    per_source =
      Array.init n (fun i ->
          {
            name = sources.(i).Source.name;
            offered = offered.(i);
            admitted = admitted.(i);
            lost = lost.(i);
            loss_fraction = (if offered.(i) > 0.0 then lost.(i) /. offered.(i) else 0.0);
            mean_rate = offered.(i) /. fslots;
            peak_rate = peak.(i);
            corrupt_slots = corrupt.(i);
            throttled = throttled.(i);
            discarded = discarded.(i);
            departed_at = (if departed_at.(i) < 0 then None else Some departed_at.(i));
          });
  }

let pp_report ppf r =
  let pct x = 100.0 *. x in
  Format.fprintf ppf "slots             %d@." r.slots;
  Format.fprintf ppf "service           %.1f work/slot@." r.service;
  (if r.buffer = infinity then Format.fprintf ppf "buffer            unbounded@."
   else Format.fprintf ppf "buffer            %.1f@." r.buffer);
  Format.fprintf ppf "offered load      %.1f%% of service@." (pct r.offered_utilization);
  Format.fprintf ppf "carried load      %.1f%% of service@." (pct r.carried_utilization);
  Format.fprintf ppf "loss fraction     %.4g@." r.loss_fraction;
  Format.fprintf ppf "mean queue        %.1f@." r.mean_queue;
  Format.fprintf ppf "max queue         %.1f@." r.max_queue;
  List.iter
    (fun (p, q) -> Format.fprintf ppf "queue q(%.2f)      %.1f@." p q)
    r.queue_quantiles;
  List.iter
    (fun (p, d) -> Format.fprintf ppf "delay q(%.2f)      %.2f slots@." p d)
    r.delay_quantiles;
  if List.length r.class_delay_quantiles > 1 then
    List.iter
      (fun (c, qs) ->
        List.iter
          (fun (p, d) ->
            Format.fprintf ppf "class %d delay q(%.2f)  %.2f slots@." c p d)
          qs)
      r.class_delay_quantiles;
  if r.overflow <> [] then begin
    Format.fprintf ppf "overflow:@.";
    List.iter
      (fun (b, p) ->
        Format.fprintf ppf "  Pr(Q > %8.0f)  %.5g  %s@." b p
          (if p > 0.0 then Printf.sprintf "(log10 %.3f)" (log10 p) else ""))
      r.overflow
  end;
  Format.fprintf ppf "per source:@.";
  Format.fprintf ppf "  %-12s  %12s  %12s  %10s  %10s@." "name" "offered" "lost"
    "loss-frac" "peak-rate";
  Array.iter
    (fun s ->
      Format.fprintf ppf "  %-12s  %12.4g  %12.4g  %10.4g  %10.4g@." s.name s.offered
        s.lost s.loss_fraction s.peak_rate)
    r.per_source;
  let troubled =
    Array.to_list r.per_source
    |> List.filter (fun s ->
           s.corrupt_slots > 0 || s.throttled > 0.0 || s.discarded > 0.0
           || s.departed_at <> None)
  in
  if troubled <> [] then begin
    Format.fprintf ppf "incidents:@.";
    Format.fprintf ppf "  %-12s  %8s  %12s  %12s  %10s@." "name" "corrupt" "throttled"
      "discarded" "departed";
    List.iter
      (fun s ->
        Format.fprintf ppf "  %-12s  %8d  %12.4g  %12.4g  %10s@." s.name s.corrupt_slots
          s.throttled s.discarded
          (match s.departed_at with None -> "-" | Some t -> string_of_int t))
      troubled
  end

module Online = Ss_stats.Online_stats

type source_report = {
  name : string;
  offered : float;
  admitted : float;
  lost : float;
  loss_fraction : float;
  mean_rate : float;
  peak_rate : float;
  corrupt_slots : int;
  throttled : float;
  discarded : float;
  departed_at : int option;
}

type report = {
  slots : int;
  service : float;
  buffer : float;
  offered_utilization : float;
  carried_utilization : float;
  loss_fraction : float;
  mean_queue : float;
  max_queue : float;
  queue_quantiles : (float * float) list;
  delay_quantiles : (float * float) list;
  class_delay_quantiles : (int * (float * float) list) list;
  overflow : (float * float) list;
  per_source : source_report array;
}

let max_classes = 64

(* Number of slots a pooled run advances every source by before the
   sequential Lindley/admission loop consumes them; amortizes the
   per-batch pool synchronization over prefetch_slots * N pulls. *)
let prefetch_slots = 256

let run ?pool ?(buffer = infinity) ?(thresholds = []) ?(quantiles = [ 0.5; 0.9; 0.99 ]) ?probe
    ?police ~service ~slots sources =
  if slots <= 0 then invalid_arg "Mux.run: slots <= 0";
  if service <= 0.0 then invalid_arg "Mux.run: service <= 0";
  if buffer < 0.0 then invalid_arg "Mux.run: buffer < 0";
  let n = Array.length sources in
  if n = 0 then invalid_arg "Mux.run: no sources";
  List.iter (fun b -> if b < 0.0 then invalid_arg "Mux.run: negative threshold") thresholds;
  (match police with
  | Some p when Police.size p <> n -> invalid_arg "Mux.run: policer sized for different sources"
  | _ -> ());
  let departed = Array.make n false in
  let departed_at = Array.make n (-1) in
  (* A source that raises [Source.End_of_stream] departs cleanly: it
     contributes zero work from that slot on and the run continues
     with the remaining sources. Each source's flag is written only
     by the task that owns the source, so the pooled prefetch stays
     race-free. *)
  let pull_raw t i =
    if departed.(i) then (0.0, 0)
    else
      match Source.next sources.(i) with
      | wc -> wc
      | exception Source.End_of_stream ->
        departed.(i) <- true;
        departed_at.(i) <- t;
        (0.0, 0)
  in
  (* Source pulls are independent of the queue state, so with a pool
     they are advanced a block of slots at a time, each source on one
     domain (a source's internal state is only ever touched by the
     task that owns it). Every source still sees exactly one pull per
     slot in slot order, so the run is bit-identical with and without
     a pool — the Lindley recursion below stays sequential either
     way. *)
  let pull =
    match pool with
    | None -> pull_raw
    | Some p ->
      let wbuf = Array.make (prefetch_slots * n) 0.0 in
      let cbuf = Array.make (prefetch_slots * n) 0 in
      let base = ref 0 in
      let filled = ref 0 in
      fun t i ->
        if t >= !base + !filled then begin
          base := t;
          let bs = Stdlib.min prefetch_slots (slots - t) in
          filled := bs;
          Ss_parallel.Pool.parallel_for p ~chunk:1 ~lo:0 ~hi:(n - 1) (fun i ->
              for s = 0 to bs - 1 do
                let w, c = pull_raw (t + s) i in
                wbuf.((s * n) + i) <- w;
                cbuf.((s * n) + i) <- c
              done)
        end;
        let off = ((t - !base) * n) + i in
        (wbuf.(off), cbuf.(off))
  in
  let works = Array.make n 0.0 in
  let classes = Array.make n 0 in
  let class_sums = Array.make max_classes 0.0 in
  let class_scale = Array.make max_classes 1.0 in
  let class_adm = Array.make max_classes 0.0 in
  let offered = Array.make n 0.0 in
  let admitted = Array.make n 0.0 in
  let lost = Array.make n 0.0 in
  let peak = Array.make n 0.0 in
  let corrupt = Array.make n 0 in
  let throttled = Array.make n 0.0 in
  let discarded = Array.make n 0.0 in
  let queue_stats = Online.create () in
  let q_quant = List.map (fun p -> (p, Online.P2.create ~p)) quantiles in
  let d_quant = List.map (fun p -> (p, Online.P2.create ~p)) quantiles in
  (* Per-class virtual-delay tracking: class backlogs follow the same
     arrivals-then-service recursion as [q] (their sum replays it),
     kept strictly apart from the Lindley state so the queue floats
     stay bit-identical to runs that never asked for class delays. *)
  let class_backlog = Array.make max_classes 0.0 in
  let class_quant : (float * Online.P2.t) list option array = Array.make max_classes None in
  let top_class = ref (-1) in
  let thr = Array.of_list thresholds in
  let thr_hits = Array.make (Array.length thr) 0 in
  let q = ref 0.0 in
  let served_total = ref 0.0 in
  for t = 0 to slots - 1 do
    let max_class = ref 0 in
    for i = 0 to n - 1 do
      let w, c = pull t i in
      (* Graceful degradation: corrupt work (NaN, negative, infinite)
         must not crash the run or poison the Lindley recursion — it
         is zeroed, counted against the source, and reported to the
         policer (which evicts repeat offenders). *)
      let w, was_corrupt =
        if Float.is_nan w || w < 0.0 || w = infinity then begin
          corrupt.(i) <- corrupt.(i) + 1;
          (match police with Some p -> Police.note_corrupt p ~slot:t i | None -> ());
          (0.0, true)
        end
        else (w, false)
      in
      if c < 0 || c >= max_classes then
        invalid_arg (Printf.sprintf "Mux.run: source %s yielded class %d" sources.(i).Source.name c);
      let w, c =
        match police with
        | None -> (w, c)
        | Some p ->
          if Police.evicted p i then begin
            discarded.(i) <- discarded.(i) +. w;
            (0.0, c)
          end
          else begin
            (* The policer judges the work the source tried to send;
               the buffer sees the throttled remainder. Corrupt slots
               went to [note_corrupt] instead — a NaN would poison
               the moment estimates. *)
            if not was_corrupt then Police.observe p ~slot:t i w;
            let cap = Police.cap p i in
            let w' =
              if w > cap then begin
                throttled.(i) <- throttled.(i) +. (w -. cap);
                cap
              end
              else w
            in
            let d = Police.demotion p i in
            let c' = if d = 0 then c else Stdlib.min (max_classes - 1) (c + d) in
            (w', c')
          end
      in
      works.(i) <- w;
      classes.(i) <- c;
      offered.(i) <- offered.(i) +. w;
      if w > peak.(i) then peak.(i) <- w;
      if c > !max_class then max_class := c;
      class_sums.(c) <- class_sums.(c) +. w
    done;
    if !max_class > !top_class then begin
      (* Estimators exist for classes up to the highest one seen so
         far and are fed from that slot on. *)
      for c = !top_class + 1 to !max_class do
        class_quant.(c) <- Some (List.map (fun p -> (p, Online.P2.create ~p)) quantiles)
      done;
      top_class := !max_class
    end;
    let admitted_total = ref 0.0 in
    if buffer = infinity then begin
      for i = 0 to n - 1 do
        admitted_total := !admitted_total +. works.(i);
        admitted.(i) <- admitted.(i) +. works.(i)
      done;
      for c = 0 to !max_class do
        class_adm.(c) <- class_sums.(c);
        class_sums.(c) <- 0.0
      done
    end
    else begin
      (* Work served during the slot frees space for the slot's own
         arrivals; classes are admitted in strict priority order and
         a class that does not fit shares the remaining room
         proportionally to offered work. *)
      let room = ref (Stdlib.max 0.0 (buffer +. service -. !q)) in
      for c = 0 to !max_class do
        let s = class_sums.(c) in
        let f =
          if s <= 0.0 then 0.0 else if s <= !room then 1.0 else !room /. s
        in
        class_scale.(c) <- f;
        room := Stdlib.max 0.0 (!room -. (s *. f));
        class_adm.(c) <- s *. f;
        class_sums.(c) <- 0.0
      done;
      for i = 0 to n - 1 do
        let w = works.(i) in
        let a = w *. class_scale.(classes.(i)) in
        admitted_total := !admitted_total +. a;
        admitted.(i) <- admitted.(i) +. a;
        lost.(i) <- lost.(i) +. (w -. a)
      done
    end;
    served_total := !served_total +. Stdlib.min service (!q +. !admitted_total);
    q := Stdlib.max 0.0 (!q +. !admitted_total -. service);
    (* Replay the slot on the class backlogs: arrivals, then strict
       priority service of the slot's capacity. *)
    let rem = ref service in
    for c = 0 to !top_class do
      let b = class_backlog.(c) +. class_adm.(c) in
      class_adm.(c) <- 0.0;
      let take = Stdlib.min !rem b in
      class_backlog.(c) <- b -. take;
      rem := !rem -. take
    done;
    let prefix = ref 0.0 in
    for c = 0 to !top_class do
      prefix := !prefix +. class_backlog.(c);
      match class_quant.(c) with
      | Some qs -> List.iter (fun (_, p2) -> Online.P2.add p2 (!prefix /. service)) qs
      | None -> ()
    done;
    Online.add queue_stats !q;
    List.iter (fun (_, p2) -> Online.P2.add p2 !q) q_quant;
    List.iter (fun (_, p2) -> Online.P2.add p2 (!q /. service)) d_quant;
    Array.iteri (fun j b -> if !q > b then thr_hits.(j) <- thr_hits.(j) + 1) thr;
    match probe with None -> () | Some f -> f t !q
  done;
  let fslots = float_of_int slots in
  let total_offered = Array.fold_left ( +. ) 0.0 offered in
  let total_lost = Array.fold_left ( +. ) 0.0 lost in
  {
    slots;
    service;
    buffer;
    offered_utilization = total_offered /. fslots /. service;
    carried_utilization = !served_total /. (service *. fslots);
    loss_fraction = (if total_offered > 0.0 then total_lost /. total_offered else 0.0);
    mean_queue = Online.mean queue_stats;
    max_queue = Online.max queue_stats;
    queue_quantiles = List.map (fun (p, p2) -> (p, Online.P2.quantile p2)) q_quant;
    delay_quantiles = List.map (fun (p, p2) -> (p, Online.P2.quantile p2)) d_quant;
    class_delay_quantiles =
      (let acc = ref [] in
       for c = !top_class downto 0 do
         match class_quant.(c) with
         | Some qs when List.for_all (fun (_, p2) -> Online.P2.count p2 > 0) qs ->
           acc := (c, List.map (fun (p, p2) -> (p, Online.P2.quantile p2)) qs) :: !acc
         | _ -> ()
       done;
       !acc);
    overflow =
      List.mapi (fun j b -> (b, float_of_int thr_hits.(j) /. fslots)) thresholds;
    per_source =
      Array.init n (fun i ->
          {
            name = sources.(i).Source.name;
            offered = offered.(i);
            admitted = admitted.(i);
            lost = lost.(i);
            loss_fraction = (if offered.(i) > 0.0 then lost.(i) /. offered.(i) else 0.0);
            mean_rate = offered.(i) /. fslots;
            peak_rate = peak.(i);
            corrupt_slots = corrupt.(i);
            throttled = throttled.(i);
            discarded = discarded.(i);
            departed_at = (if departed_at.(i) < 0 then None else Some departed_at.(i));
          });
  }

let pp_report ppf r =
  let pct x = 100.0 *. x in
  Format.fprintf ppf "slots             %d@." r.slots;
  Format.fprintf ppf "service           %.1f work/slot@." r.service;
  (if r.buffer = infinity then Format.fprintf ppf "buffer            unbounded@."
   else Format.fprintf ppf "buffer            %.1f@." r.buffer);
  Format.fprintf ppf "offered load      %.1f%% of service@." (pct r.offered_utilization);
  Format.fprintf ppf "carried load      %.1f%% of service@." (pct r.carried_utilization);
  Format.fprintf ppf "loss fraction     %.4g@." r.loss_fraction;
  Format.fprintf ppf "mean queue        %.1f@." r.mean_queue;
  Format.fprintf ppf "max queue         %.1f@." r.max_queue;
  List.iter
    (fun (p, q) -> Format.fprintf ppf "queue q(%.2f)      %.1f@." p q)
    r.queue_quantiles;
  List.iter
    (fun (p, d) -> Format.fprintf ppf "delay q(%.2f)      %.2f slots@." p d)
    r.delay_quantiles;
  if List.length r.class_delay_quantiles > 1 then
    List.iter
      (fun (c, qs) ->
        List.iter
          (fun (p, d) ->
            Format.fprintf ppf "class %d delay q(%.2f)  %.2f slots@." c p d)
          qs)
      r.class_delay_quantiles;
  if r.overflow <> [] then begin
    Format.fprintf ppf "overflow:@.";
    List.iter
      (fun (b, p) ->
        Format.fprintf ppf "  Pr(Q > %8.0f)  %.5g  %s@." b p
          (if p > 0.0 then Printf.sprintf "(log10 %.3f)" (log10 p) else ""))
      r.overflow
  end;
  Format.fprintf ppf "per source:@.";
  Format.fprintf ppf "  %-12s  %12s  %12s  %10s  %10s@." "name" "offered" "lost"
    "loss-frac" "peak-rate";
  Array.iter
    (fun s ->
      Format.fprintf ppf "  %-12s  %12.4g  %12.4g  %10.4g  %10.4g@." s.name s.offered
        s.lost s.loss_fraction s.peak_rate)
    r.per_source;
  let troubled =
    Array.to_list r.per_source
    |> List.filter (fun s ->
           s.corrupt_slots > 0 || s.throttled > 0.0 || s.discarded > 0.0
           || s.departed_at <> None)
  in
  if troubled <> [] then begin
    Format.fprintf ppf "incidents:@.";
    Format.fprintf ppf "  %-12s  %8s  %12s  %12s  %10s@." "name" "corrupt" "throttled"
      "discarded" "departed";
    List.iter
      (fun s ->
        Format.fprintf ppf "  %-12s  %8d  %12.4g  %12.4g  %10s@." s.name s.corrupt_slots
          s.throttled s.discarded
          (match s.departed_at with None -> "-" | Some t -> string_of_int t))
      troubled
  end

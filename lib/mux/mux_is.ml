module Rng = Ss_stats.Rng
module Mc = Ss_queueing.Mc
module Model = Ss_core.Model
module Twist = Ss_fastsim.Twist
module Likelihood = Ss_fastsim.Likelihood
module Valley = Ss_fastsim.Valley

type config = {
  model : Model.t;
  sources : int;
  order : int;
  service : float;
  buffer : float;
  slots : int;
  twist : float;
  profile : Twist.t;
  scales : float array;
  plans : Likelihood.plan array;
}

let scaled_profile profile scale =
  if scale = 1.0 then profile
  else
    match Twist.constant_value profile with
    | Some m -> Twist.constant (scale *. m)
    | None -> Twist.of_fun (fun k -> scale *. Twist.shift profile k)

let make_config ~model ~sources ?(order = 256) ?(backend = `Hosking) ?(kernel = `Exact)
    ~service ~buffer ~slots ~twist ?profile ?scales () =
  (match (kernel : Source.kernel) with
  | `Exact -> ()
  | (`Relaxed | `Fft) as k ->
    (* The twisted generator runs the scalar exact recursion so the
       probe sees every innovation; the fast-math tiers reassociate
       (or block) that arithmetic, which would silently decouple the
       sampled path from the accumulated likelihood. *)
    let name = match k with `Relaxed -> "`Relaxed" | `Fft -> "`Fft" in
    invalid_arg
      (Printf.sprintf
         "Mux_is.make_config: kernel %s cannot drive importance sampling (likelihood \
          accumulation certifies the exact per-innovation recursion); use the default \
          `Exact kernel"
         name));
  (match (backend : Source.backend) with
  | `Hosking -> ()
  | (`Davies_harte | `Paxson) as b ->
    (* The likelihood ratio is accumulated from the per-step Hosking
       innovations; the materializing syntheses (exact Davies-Harte,
       approximate Paxson) never produce them, so importance sampling
       cannot run on them. *)
    let name = match b with `Davies_harte -> "`Davies_harte" | `Paxson -> "`Paxson" in
    invalid_arg
      (Printf.sprintf
         "Mux_is.make_config: backend %s cannot drive importance sampling (the streaming \
          likelihood needs per-step Hosking innovations); use the default `Hosking backend"
         name));
  if sources <= 0 then invalid_arg "Mux_is.make_config: sources <= 0";
  if service <= 0.0 then invalid_arg "Mux_is.make_config: service <= 0";
  if buffer < 0.0 then invalid_arg "Mux_is.make_config: buffer < 0";
  if slots <= 0 then invalid_arg "Mux_is.make_config: slots <= 0";
  let profile = match profile with Some p -> p | None -> Twist.constant twist in
  let scales =
    match scales with
    | None -> Array.make sources 1.0
    | Some s ->
      if Array.length s <> sources then
        invalid_arg "Mux_is.make_config: scales length <> sources";
      Array.iter
        (fun v ->
          if Float.is_nan v || v < 0.0 then invalid_arg "Mux_is.make_config: negative scale")
        s;
      Array.copy s
  in
  let table = Source.table_for ~acf:(Model.background_acf model) ~order in
  (* One likelihood plan per distinct scale; identical scales share. *)
  let plan_cache = Hashtbl.create 4 in
  let plans =
    Array.map
      (fun s ->
        match Hashtbl.find_opt plan_cache s with
        | Some p -> p
        | None ->
          let p = Likelihood.plan ~table ~profile:(scaled_profile profile s) in
          Hashtbl.add plan_cache s p;
          p)
      scales
  in
  { model; sources; order; service; buffer; slots; twist; profile; scales; plans }

type replication = {
  hit : bool;
  log_weight : float;
  stop_slot : int;
}

exception Crossed of int

let replicate cfg rng =
  let n = cfg.sources in
  let liks = Array.map Likelihood.stream_of_plan cfg.plans in
  (* Substreams are split in source-index order on the replication's
     own substream, so the replication is a pure function of [rng]
     regardless of how replications are distributed over domains. *)
  let srcs =
    Array.init n (fun i ->
        let sub = Rng.split rng in
        let lik = liks.(i) in
        Source.of_model_twisted
          ~name:(Printf.sprintf "is%d" i)
          ~order:cfg.order
          ~shift:(Twist.shift (Likelihood.plan_profile cfg.plans.(i)))
          ~probe:(fun ~k ~innovation -> Likelihood.stream_step lik ~k ~innovation)
          cfg.model sub)
  in
  match
    Mux.run ~quantiles:[] ~service:cfg.service ~slots:cfg.slots
      ~probe:(fun t q -> if q > cfg.buffer then raise (Crossed t))
      srcs
  with
  | (_ : Mux.report) -> { hit = false; log_weight = neg_infinity; stop_slot = cfg.slots }
  | exception Crossed t ->
    (* Likelihood ratio of the joint (independent-sources) path at the
       stopping time: the product of per-source ratios, each cut off
       at the innovations actually drawn. *)
    let lw = Array.fold_left (fun acc l -> acc +. Likelihood.stream_log_ratio l) 0.0 liks in
    { hit = true; log_weight = lw; stop_slot = t + 1 }

let estimate ?pool cfg ~replications rng =
  if replications <= 0 then invalid_arg "Mux_is.estimate: replications <= 0";
  let samples =
    Ss_parallel.Fanout.map ?pool ~rng ~n:replications (fun sub _ ->
        (replicate cfg sub).log_weight)
  in
  Mc.estimate_of_log_samples samples

let mean_stop_slot ?pool cfg ~replications rng =
  if replications <= 0 then invalid_arg "Mux_is.mean_stop_slot: replications <= 0";
  let total =
    Ss_parallel.Fanout.fold ?pool ~rng ~n:replications ~f:( + ) ~init:0 (fun sub _ ->
        (replicate cfg sub).stop_slot)
  in
  float_of_int total /. float_of_int replications

let eval_of ?pool ~config ~replications ~twist rng =
  estimate ?pool (config ~twist) ~replications rng

let sweep ?pool ~config ~twists ~replications rng =
  Valley.sweep_by ~eval:(eval_of ?pool ~config ~replications) ~twists rng

let auto ?pool ~config ?lo ?hi ?coarse ~replications rng =
  Valley.auto_by ~eval:(eval_of ?pool ~config ~replications) ?lo ?hi ?coarse rng

module Online = Ss_stats.Online_stats

type config = {
  window : int;
  warmup_windows : int;
  mean_tol : float;
  sigma2_tol : float;
  hurst_tol : float;
  violation_factor : float;
  envelope_sigmas : float;
  hurst_min_windows : int;
  grace : int;
  evict_after : int;
  corrupt_limit : int;
}

let default =
  {
    window = 512;
    warmup_windows = 1;
    mean_tol = 0.15;
    sigma2_tol = 1.5;
    hurst_tol = 0.15;
    violation_factor = 2.0;
    envelope_sigmas = 3.0;
    hurst_min_windows = 8;
    grace = 2;
    evict_after = 3;
    corrupt_limit = 16;
  }

type verdict = Conforming | Drifting of Admission.descr | Violating of string

type event =
  | Flagged of verdict
  | Renegotiated of Admission.descr
  | Demoted of int
  | Throttle_set of float
  | Evicted

type incident = { slot : int; source : string; event : event }

type state = {
  mutable declared : Admission.descr;
  mutable win : Online.t;
  vt : Online.Vt.t;
  mutable filled : int;
  mutable windows : int;  (* closed windows so far *)
  mutable consec_bad : int;  (* consecutive non-conforming windows *)
  mutable strikes : int;  (* escalation-ladder position *)
  mutable demote : int;  (* accumulated priority demotion *)
  mutable cap : float;  (* per-slot work cap; infinity = none *)
  mutable evicted : bool;
  mutable detected_at : int;  (* slot of first flag; -1 = never *)
  mutable corrupt : int;
  mutable measured : Admission.descr option;  (* last closed window *)
}

type t = {
  config : config;
  cac : Admission.t option;
  states : state array;
  mutable incidents : incident list;  (* reverse chronological *)
}

let validate_config c =
  if c.window < 2 then invalid_arg "Police.create: window < 2";
  if c.warmup_windows < 0 then invalid_arg "Police.create: warmup_windows < 0";
  if not (c.mean_tol > 0.0) then invalid_arg "Police.create: mean_tol <= 0";
  if not (c.sigma2_tol > 0.0) then invalid_arg "Police.create: sigma2_tol <= 0";
  if not (c.hurst_tol > 0.0) then invalid_arg "Police.create: hurst_tol <= 0";
  if not (c.violation_factor > 1.0) then invalid_arg "Police.create: violation_factor <= 1";
  if not (c.envelope_sigmas > 0.0) then invalid_arg "Police.create: envelope_sigmas <= 0";
  if c.hurst_min_windows < 1 then invalid_arg "Police.create: hurst_min_windows < 1";
  if c.grace < 1 then invalid_arg "Police.create: grace < 1";
  if c.evict_after < 1 then invalid_arg "Police.create: evict_after < 1";
  if c.corrupt_limit < 1 then invalid_arg "Police.create: corrupt_limit < 1"

let create ?(config = default) ?cac descrs =
  validate_config config;
  if Array.length descrs = 0 then invalid_arg "Police.create: no sources";
  {
    config;
    cac;
    states =
      Array.map
        (fun d ->
          (match Admission.validate d with
          | Some reason -> invalid_arg ("Police.create: " ^ reason)
          | None -> ());
          {
            declared = d;
            win = Online.create ();
            vt = Online.Vt.create ();
            filled = 0;
            windows = 0;
            consec_bad = 0;
            strikes = 0;
            demote = 0;
            cap = infinity;
            evicted = false;
            detected_at = -1;
            corrupt = 0;
            measured = None;
          })
        descrs;
    incidents = [];
  }

let size t = Array.length t.states

let check t i name =
  if i < 0 || i >= size t then invalid_arg (Printf.sprintf "Police.%s: source %d" name i)

let record t ~slot i event =
  t.incidents <- { slot; source = t.states.(i).declared.Admission.name; event } :: t.incidents

let flag t ~slot i verdict =
  let s = t.states.(i) in
  if s.detected_at < 0 then s.detected_at <- slot;
  record t ~slot i (Flagged verdict)

let do_evict t ~slot i =
  let s = t.states.(i) in
  if not s.evicted then begin
    s.evicted <- true;
    record t ~slot i Evicted;
    match t.cac with
    | Some cac -> ignore (Admission.evict cac ~name:s.declared.Admission.name)
    | None -> ()
  end

let set_cap t ~slot i cap =
  let s = t.states.(i) in
  if s.cap <> cap then begin
    s.cap <- cap;
    record t ~slot i (Throttle_set cap)
  end

let envelope c (d : Admission.descr) =
  d.Admission.mean +. (c.envelope_sigmas *. sqrt (Stdlib.max 0.0 d.Admission.sigma2))

(* Escalation ladder for persistent drift: first renegotiate the
   contract against the measured model (the CAC decides with the old
   contract released), then demote the source's priority class, then
   clamp it at its declared envelope, then evict. [strikes] is
   sticky: a source that has exhausted renegotiation does not get a
   second one by briefly conforming. *)
let escalate t ~slot i (measured : Admission.descr) =
  let c = t.config in
  let s = t.states.(i) in
  (match s.strikes with
  | 0 ->
    let granted =
      match t.cac with
      | None -> true
      | Some cac -> (
        match Admission.renegotiate cac ~name:s.declared.Admission.name measured with
        | Admission.Admit _ -> true
        | Admission.Reject _ -> false)
    in
    if granted then begin
      s.declared <- measured;
      record t ~slot i (Renegotiated measured)
    end
    else begin
      s.demote <- s.demote + 1;
      s.strikes <- 1;
      record t ~slot i (Demoted s.demote)
    end
  | 1 ->
    set_cap t ~slot i (envelope c s.declared);
    s.strikes <- 2
  | _ -> do_evict t ~slot i);
  s.consec_bad <- 0

let close_window t ~slot i =
  let c = t.config in
  let s = t.states.(i) in
  let mu = Online.mean s.win in
  let v = Online.variance s.win in
  let d = s.declared in
  (* The variance-time estimate needs many aggregation blocks before
     its high levels say anything; an immature estimate would make
     the first renegotiated contract inherit a noise value of H. *)
  let h_meas =
    if s.windows + 1 < c.hurst_min_windows then None
    else
      match Online.Vt.estimate s.vt with
      | Some h -> Some (Stdlib.min 0.99 (Stdlib.max 0.01 h))
      | None -> None
  in
  let measured =
    {
      Admission.name = d.Admission.name;
      mean = mu;
      sigma2 = Stdlib.max 0.0 v;
      hurst = (match h_meas with Some h -> h | None -> d.Admission.hurst);
    }
  in
  s.measured <- Some measured;
  s.windows <- s.windows + 1;
  s.win <- Online.create ();
  s.filled <- 0;
  if s.windows > c.warmup_windows then begin
    (* Under the declared FGN model the window-of-W mean has standard
       deviation sqrt(sigma2) * W^(H-1) — for H = 0.9, W = 512 that
       is ~0.54 sqrt(sigma2), nothing like the 1/sqrt(W) of i.i.d.
       input — so conformance bands must be LRD-aware or every honest
       long-memory source gets flagged. *)
    let sigma_w =
      sqrt (Stdlib.max 0.0 d.Admission.sigma2)
      *. (float_of_int c.window ** (d.Admission.hurst -. 1.0))
    in
    let mean_band = Stdlib.max (c.mean_tol *. d.Admission.mean) (c.envelope_sigmas *. sigma_w) in
    let verdict =
      if Float.is_nan mu then Violating "window mean is NaN"
      else if
        (* Outright violation is gross: the declared variance-time
           law is asymptotic and honest scene-driven sources overshoot
           the 3-sigma drift band a few percent of the time, so the
           violation line sits at twice the drift sigmas AND a
           multiple of the declared mean. *)
        mu
        > Stdlib.max
            (c.violation_factor *. d.Admission.mean)
            (d.Admission.mean +. (2.0 *. c.envelope_sigmas *. sigma_w))
      then
        Violating
          (Printf.sprintf "window mean %.4g exceeds %.2fx declared mean %.4g" mu
             c.violation_factor d.Admission.mean)
      else if Float.abs (mu -. d.Admission.mean) > mean_band then Drifting measured
      else if v > d.Admission.sigma2 *. (1.0 +. c.sigma2_tol) then Drifting measured
      else
        match h_meas with
        | Some h when Float.abs (h -. d.Admission.hurst) > c.hurst_tol -> Drifting measured
        | _ -> Conforming
    in
    match verdict with
    | Conforming ->
      s.consec_bad <- 0;
      if s.cap < infinity then set_cap t ~slot i infinity
    | Drifting _ ->
      flag t ~slot i verdict;
      s.consec_bad <- s.consec_bad + 1;
      if s.consec_bad >= c.grace then escalate t ~slot i measured
    | Violating _ ->
      flag t ~slot i verdict;
      s.consec_bad <- s.consec_bad + 1;
      set_cap t ~slot i (envelope c d);
      if s.strikes < 2 then s.strikes <- 2;
      if s.consec_bad >= c.evict_after then do_evict t ~slot i
  end

let observe t ~slot i w =
  check t i "observe";
  let s = t.states.(i) in
  if not s.evicted then begin
    Online.add s.win w;
    Online.Vt.add s.vt w;
    s.filled <- s.filled + 1;
    if s.filled >= t.config.window then close_window t ~slot i
  end

let note_corrupt t ~slot i =
  check t i "note_corrupt";
  let s = t.states.(i) in
  if not s.evicted then begin
    s.corrupt <- s.corrupt + 1;
    if s.corrupt >= t.config.corrupt_limit then begin
      flag t ~slot i
        (Violating (Printf.sprintf "%d corrupt slots (limit %d)" s.corrupt t.config.corrupt_limit));
      do_evict t ~slot i
    end
  end

let cap t i =
  check t i "cap";
  t.states.(i).cap

let demotion t i =
  check t i "demotion";
  t.states.(i).demote

let evicted t i =
  check t i "evicted";
  t.states.(i).evicted

let detected_at t i =
  check t i "detected_at";
  let d = t.states.(i).detected_at in
  if d < 0 then None else Some d

let declared t i =
  check t i "declared";
  t.states.(i).declared

let measured t i =
  check t i "measured";
  t.states.(i).measured

let corrupt_slots t i =
  check t i "corrupt_slots";
  t.states.(i).corrupt

let incidents t = List.rev t.incidents
let incident_count t = List.length t.incidents

(* --- checkpoint codec --------------------------------------------- *)

module W = Ss_checkpoint.W
module R = Ss_checkpoint.R

let corrupt fmt = Printf.ksprintf (fun s -> raise (Ss_checkpoint.Corrupt s)) fmt

let save_verdict w = function
  | Conforming -> W.u8 w 0
  | Drifting d ->
    W.u8 w 1;
    Admission.save_descr w d
  | Violating reason ->
    W.u8 w 2;
    W.string w reason

let read_verdict r =
  match R.u8 r with
  | 0 -> Conforming
  | 1 -> Drifting (Admission.read_descr r)
  | 2 -> Violating (R.string r)
  | v -> corrupt "police: unknown verdict tag %d" v

let save_event w = function
  | Flagged v ->
    W.u8 w 0;
    save_verdict w v
  | Renegotiated d ->
    W.u8 w 1;
    Admission.save_descr w d
  | Demoted k ->
    W.u8 w 2;
    W.int w k
  | Throttle_set cap ->
    W.u8 w 3;
    W.float w cap
  | Evicted -> W.u8 w 4

let read_event r =
  match R.u8 r with
  | 0 -> Flagged (read_verdict r)
  | 1 -> Renegotiated (Admission.read_descr r)
  | 2 -> Demoted (R.int r)
  | 3 -> Throttle_set (R.float r)
  | 4 -> Evicted
  | v -> corrupt "police: unknown event tag %d" v

let save_state w s =
  Admission.save_descr w s.declared;
  Online.save s.win w;
  Online.Vt.save s.vt w;
  W.int w s.filled;
  W.int w s.windows;
  W.int w s.consec_bad;
  W.int w s.strikes;
  W.int w s.demote;
  W.float w s.cap;
  W.bool w s.evicted;
  W.int w s.detected_at;
  W.int w s.corrupt;
  W.option w Admission.save_descr s.measured

let restore_state r s =
  s.declared <- Admission.read_descr r;
  Online.restore s.win r;
  Online.Vt.restore s.vt r;
  s.filled <- R.int r;
  s.windows <- R.int r;
  s.consec_bad <- R.int r;
  s.strikes <- R.int r;
  s.demote <- R.int r;
  s.cap <- R.float r;
  s.evicted <- R.bool r;
  s.detected_at <- R.int r;
  s.corrupt <- R.int r;
  s.measured <- R.option r Admission.read_descr

let save t w =
  W.tag w "police";
  W.int w (Array.length t.states);
  Array.iter (save_state w) t.states;
  W.int w (List.length t.incidents);
  List.iter
    (fun { slot; source; event } ->
      W.int w slot;
      W.string w source;
      save_event w event)
    t.incidents;
  W.option w (fun w cac -> Admission.save cac w) t.cac

let restore t r =
  R.tag r "police";
  let n = R.int r in
  if n <> Array.length t.states then
    corrupt "police: checkpoint has %d sources, policer has %d" n (Array.length t.states);
  Array.iter (restore_state r) t.states;
  let k = R.int r in
  if k < 0 then corrupt "police: negative incident count";
  t.incidents <-
    List.init k (fun _ ->
        let slot = R.int r in
        let source = R.string r in
        let event = read_event r in
        { slot; source; event });
  match (R.bool r, t.cac) with
  | true, Some cac -> Admission.restore cac r
  | false, None -> ()
  | true, None -> corrupt "police: checkpoint carries CAC state but the policer has no CAC"
  | false, Some _ -> corrupt "police: checkpoint has no CAC state but the policer has a CAC"

let pp_descr ppf (d : Admission.descr) =
  Fmt.pf ppf "mean %.4g sigma2 %.4g H %.3f" d.Admission.mean d.Admission.sigma2
    d.Admission.hurst

let pp_verdict ppf = function
  | Conforming -> Fmt.pf ppf "conforming"
  | Drifting d -> Fmt.pf ppf "drifting (measured %a)" pp_descr d
  | Violating reason -> Fmt.pf ppf "violating: %s" reason

let pp_event ppf = function
  | Flagged v -> pp_verdict ppf v
  | Renegotiated d -> Fmt.pf ppf "renegotiated (%a)" pp_descr d
  | Demoted k -> Fmt.pf ppf "demoted (+%d classes)" k
  | Throttle_set cap ->
    if cap = infinity then Fmt.pf ppf "throttle lifted" else Fmt.pf ppf "throttled at %.4g/slot" cap
  | Evicted -> Fmt.pf ppf "evicted"

let pp_incident ppf { slot; source; event } =
  Fmt.pf ppf "slot %d  %-12s  %a" slot source pp_event event

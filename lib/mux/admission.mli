(** Effective-bandwidth call admission control for the multiplexer.

    The decision rule is the fractional-Brownian-storage overflow
    approximation already used for Fig-16-style overlays
    ({!Ss_queueing.Norros}): a new source is admitted iff the
    predicted stationary overflow probability [Pr(Q > buffer)] of the
    aggregate — current load plus the candidate — stays at or below
    the target [epsilon]. Aggregation follows FBM superposition:
    means and variance coefficients add; the Hurst parameter of the
    aggregate is the maximum of the components (the largest H
    dominates the tail, a conservative choice for heterogeneous
    sources).

    {!effective_bandwidth} is the closed-form inverse: the smallest
    service rate at which a descriptor meets [(buffer, epsilon)],
    Norros' [c = m + (kappa(H)^2 * (-2 ln eps) * sigma2 /
    b^(2-2H))^(1/2H)] — what the paper's Section 1 calls the
    bandwidth a VBR source effectively consumes. *)

type descr = {
  name : string;
  mean : float;  (** per-slot mean arrival rate *)
  sigma2 : float;  (** per-slot marginal variance (FBM coefficient) *)
  hurst : float;
}

type decision =
  | Admit of float  (** predicted aggregate overflow after admission *)
  | Reject of string  (** human-readable reason *)

val descr_of_source : Source.t -> descr
(** Lift a streaming source's nominal parameters into a CAC
    descriptor. *)

val aggregate : descr list -> descr
(** FBM superposition: sum of means and variances, max of Hurst
    parameters. The empty list aggregates to the zero descriptor
    (mean 0, sigma2 0, H 0.5 — no LRD claim), consistent with
    [predicted_overflow [] = 0]. *)

val predicted_overflow : service:float -> buffer:float -> descr list -> float
(** Norros overflow probability of the aggregate ([0] for an empty
    list, [1] when the aggregate mean reaches the service rate).
    @raise Invalid_argument if [service <= 0] or [buffer < 0]. *)

val validate : descr -> string option
(** [None] when the descriptor is well-formed (finite nonnegative
    mean and sigma2, Hurst in (0,1)); otherwise a human-readable
    reason naming the offending field. {!decide} rejects with this
    reason instead of propagating an [Invalid_argument]. *)

val effective_bandwidth : buffer:float -> epsilon:float -> descr -> float
(** Minimal service rate under which the descriptor alone meets
    [Pr(Q > buffer) <= epsilon].
    @raise Invalid_argument if [buffer <= 0], [epsilon] outside
    (0,1), [sigma2 <= 0] or [hurst] outside (0,1). *)

type t
(** Mutable admission controller: link parameters plus the set of
    admitted descriptors. *)

val create : service:float -> buffer:float -> epsilon:float -> t
(** @raise Invalid_argument if [service <= 0], [buffer <= 0] or
    [epsilon] outside (0,1). *)

val admitted : t -> descr list
(** Currently admitted descriptors, in admission order. *)

val admitted_count : t -> int

val decide : t -> descr -> decision
(** Pure decision for a candidate against the current load; does not
    mutate. A malformed descriptor (NaN or negative mean/sigma2,
    NaN or out-of-range Hurst) is a [Reject] with the offending field
    in the reason — never an [Invalid_argument] from deeper layers:
    CAC faces untrusted, possibly measured, descriptors. *)

val try_admit : t -> descr -> decision
(** {!decide}, recording the candidate into the admitted set when the
    answer is [Admit]. *)

val renegotiate : t -> name:string -> descr -> decision
(** Replace the admitted descriptor named [name] with [d]: the
    decision is taken with the old contract removed from the load,
    and on [Reject] the old contract is restored unchanged. If no
    admitted descriptor carries [name] this is plain {!try_admit}.
    Used by {!Police} when a source's measured model drifts from its
    declared one. *)

val evict : t -> name:string -> bool
(** Remove the (most recently admitted) descriptor named [name] from
    the load; [false] if absent. *)

val save_descr : Ss_checkpoint.W.t -> descr -> unit
val read_descr : Ss_checkpoint.R.t -> descr
(** Descriptor codec, shared with the policing layer's checkpoint. *)

val save : t -> Ss_checkpoint.W.t -> unit
val restore : t -> Ss_checkpoint.R.t -> unit
(** Checkpoint codec for the admitted-load list. {!restore} requires a
    controller created with the bitwise-same service/buffer/epsilon
    and overwrites its load in place.
    @raise Ss_checkpoint.Corrupt on parameter mismatch. *)

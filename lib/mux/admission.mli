(** Effective-bandwidth call admission control for the multiplexer.

    The decision rule is the fractional-Brownian-storage overflow
    approximation already used for Fig-16-style overlays
    ({!Ss_queueing.Norros}): a new source is admitted iff the
    predicted stationary overflow probability [Pr(Q > buffer)] of the
    aggregate — current load plus the candidate — stays at or below
    the target [epsilon]. Aggregation follows FBM superposition:
    means and variance coefficients add; the Hurst parameter of the
    aggregate is the maximum of the components (the largest H
    dominates the tail, a conservative choice for heterogeneous
    sources).

    {!effective_bandwidth} is the closed-form inverse: the smallest
    service rate at which a descriptor meets [(buffer, epsilon)],
    Norros' [c = m + (kappa(H)^2 * (-2 ln eps) * sigma2 /
    b^(2-2H))^(1/2H)] — what the paper's Section 1 calls the
    bandwidth a VBR source effectively consumes. *)

type descr = {
  name : string;
  mean : float;  (** per-slot mean arrival rate *)
  sigma2 : float;  (** per-slot marginal variance (FBM coefficient) *)
  hurst : float;
}

type decision =
  | Admit of float  (** predicted aggregate overflow after admission *)
  | Reject of string  (** human-readable reason *)

val descr_of_source : Source.t -> descr
(** Lift a streaming source's nominal parameters into a CAC
    descriptor. *)

val aggregate : descr list -> descr
(** FBM superposition: sum of means and variances, max of Hurst
    parameters. @raise Invalid_argument on an empty list. *)

val predicted_overflow : service:float -> buffer:float -> descr list -> float
(** Norros overflow probability of the aggregate ([0] for an empty
    list, [1] when the aggregate mean reaches the service rate).
    @raise Invalid_argument if [service <= 0] or [buffer < 0]. *)

val effective_bandwidth : buffer:float -> epsilon:float -> descr -> float
(** Minimal service rate under which the descriptor alone meets
    [Pr(Q > buffer) <= epsilon].
    @raise Invalid_argument if [buffer <= 0], [epsilon] outside
    (0,1), [sigma2 <= 0] or [hurst] outside (0,1). *)

type t
(** Mutable admission controller: link parameters plus the set of
    admitted descriptors. *)

val create : service:float -> buffer:float -> epsilon:float -> t
(** @raise Invalid_argument if [service <= 0], [buffer <= 0] or
    [epsilon] outside (0,1). *)

val admitted : t -> descr list
(** Currently admitted descriptors, in admission order. *)

val admitted_count : t -> int

val decide : t -> descr -> decision
(** Pure decision for a candidate against the current load; does not
    mutate. *)

val try_admit : t -> descr -> decision
(** {!decide}, recording the candidate into the admitted set when the
    answer is [Admit]. *)

module Norros = Ss_queueing.Norros

type descr = { name : string; mean : float; sigma2 : float; hurst : float }
type decision = Admit of float | Reject of string

let descr_of_source (s : Source.t) =
  { name = s.Source.name; mean = s.Source.mean; sigma2 = s.Source.sigma2; hurst = s.Source.hurst }

(* Empty load aggregates to the zero descriptor (H = 1/2: an empty
   superposition carries no LRD claim), consistent with
   [predicted_overflow [] = 0]. *)
let aggregate = function
  | [] -> { name = "aggregate"; mean = 0.0; sigma2 = 0.0; hurst = 0.5 }
  | ds ->
    List.fold_left
      (fun acc d ->
        {
          acc with
          mean = acc.mean +. d.mean;
          sigma2 = acc.sigma2 +. d.sigma2;
          hurst = Stdlib.max acc.hurst d.hurst;
        })
      { name = "aggregate"; mean = 0.0; sigma2 = 0.0; hurst = 0.0 }
      ds

let predicted_overflow ~service ~buffer = function
  | [] ->
    if service <= 0.0 then invalid_arg "Admission.predicted_overflow: service <= 0";
    if buffer < 0.0 then invalid_arg "Admission.predicted_overflow: buffer < 0";
    0.0
  | ds ->
    if service <= 0.0 then invalid_arg "Admission.predicted_overflow: service <= 0";
    if buffer < 0.0 then invalid_arg "Admission.predicted_overflow: buffer < 0";
    let a = aggregate ds in
    if a.mean >= service then 1.0
    else if a.sigma2 <= 0.0 then 0.0 (* deterministic aggregate below capacity *)
    else
      Norros.overflow ~mean_rate:a.mean ~service ~hurst:a.hurst ~sigma2:a.sigma2
        ~buffer

let effective_bandwidth ~buffer ~epsilon d =
  if buffer <= 0.0 then invalid_arg "Admission.effective_bandwidth: buffer <= 0";
  if epsilon <= 0.0 || epsilon >= 1.0 then
    invalid_arg "Admission.effective_bandwidth: epsilon outside (0,1)";
  if d.sigma2 <= 0.0 then invalid_arg "Admission.effective_bandwidth: sigma2 <= 0";
  if d.hurst <= 0.0 || d.hurst >= 1.0 then
    invalid_arg "Admission.effective_bandwidth: hurst outside (0,1)";
  let h = d.hurst in
  let k = Norros.kappa h in
  (* Invert log_overflow = -(c-m)^{2H} b^{2-2H} / (2 k^2 sigma2) = ln eps. *)
  let surplus =
    (-.log epsilon *. 2.0 *. k *. k *. d.sigma2 /. (buffer ** (2.0 -. (2.0 *. h))))
    ** (1.0 /. (2.0 *. h))
  in
  d.mean +. surplus

type t = {
  service : float;
  buffer : float;
  epsilon : float;
  mutable load : descr list;  (* reverse admission order *)
}

let create ~service ~buffer ~epsilon =
  if service <= 0.0 then invalid_arg "Admission.create: service <= 0";
  if buffer <= 0.0 then invalid_arg "Admission.create: buffer <= 0";
  if epsilon <= 0.0 || epsilon >= 1.0 then invalid_arg "Admission.create: epsilon outside (0,1)";
  { service; buffer; epsilon; load = [] }

let admitted t = List.rev t.load
let admitted_count t = List.length t.load

(* A malformed descriptor must be a typed [Reject], never a later
   [Invalid_argument] deep in [Norros.overflow] — CAC faces untrusted
   (possibly measured) descriptors. *)
let validate d =
  if Float.is_nan d.mean || d.mean < 0.0 then
    Some (Printf.sprintf "%s: invalid descriptor (mean = %g)" d.name d.mean)
  else if Float.is_nan d.sigma2 || d.sigma2 < 0.0 then
    Some (Printf.sprintf "%s: invalid descriptor (sigma2 = %g)" d.name d.sigma2)
  else if Float.is_nan d.hurst || d.hurst <= 0.0 || d.hurst >= 1.0 then
    Some (Printf.sprintf "%s: invalid descriptor (hurst = %g outside (0,1))" d.name d.hurst)
  else None

let decide t d =
  match validate d with
  | Some reason -> Reject reason
  | None ->
    let p = predicted_overflow ~service:t.service ~buffer:t.buffer (d :: t.load) in
    if p <= t.epsilon then Admit p
    else
      Reject
        (Printf.sprintf "%s: predicted Pr(Q>b) = %.3g exceeds epsilon = %.3g" d.name p
           t.epsilon)

let try_admit t d =
  match decide t d with
  | Admit _ as a ->
    t.load <- d :: t.load;
    a
  | Reject _ as r -> r

(* Remove the first (most recently admitted) entry named [name];
   returns [None] if absent. *)
let remove_name load name =
  let rec go acc = function
    | [] -> None
    | d :: rest when d.name = name -> Some (d, List.rev_append acc rest)
    | d :: rest -> go (d :: acc) rest
  in
  go [] load

let evict t ~name =
  match remove_name t.load name with
  | None -> false
  | Some (_, rest) ->
    t.load <- rest;
    true

module W = Ss_checkpoint.W
module R = Ss_checkpoint.R

let save_descr w d =
  W.string w d.name;
  W.float w d.mean;
  W.float w d.sigma2;
  W.float w d.hurst

let read_descr r =
  let name = R.string r in
  let mean = R.float r in
  let sigma2 = R.float r in
  let hurst = R.float r in
  { name; mean; sigma2; hurst }

(* The mutable state is the admitted-load list (reverse admission
   order); service/buffer/epsilon are construction parameters,
   serialized only to verify the resuming process rebuilt the
   controller identically. *)
let save t w =
  W.tag w "admission";
  W.float w t.service;
  W.float w t.buffer;
  W.float w t.epsilon;
  W.int w (List.length t.load);
  List.iter (save_descr w) t.load

let restore t r =
  R.tag r "admission";
  let check name saved live =
    if Int64.bits_of_float saved <> Int64.bits_of_float live then
      raise
        (Ss_checkpoint.Corrupt
           (Printf.sprintf "admission: checkpoint %s %.17g, controller has %.17g" name saved
              live))
  in
  check "service" (R.float r) t.service;
  check "buffer" (R.float r) t.buffer;
  check "epsilon" (R.float r) t.epsilon;
  let n = R.int r in
  if n < 0 then raise (Ss_checkpoint.Corrupt "admission: negative load count");
  t.load <- List.init n (fun _ -> read_descr r)

let renegotiate t ~name d =
  match remove_name t.load name with
  | None -> try_admit t d
  | Some (old, rest) -> (
    t.load <- rest;
    match try_admit t d with
    | Admit _ as a -> a
    | Reject _ as r ->
      (* Keep the old contract when the measured one doesn't fit. *)
      t.load <- old :: t.load;
      r)

(** Deterministic fault injection for streaming sources.

    Wraps a {!Source.t} with scripted and stochastic misbehavior so
    the policing layer ({!Police}) and the multiplexer's graceful
    degradation can be exercised reproducibly: mean-drift ramps,
    multiplicative burst episodes, stalls and dropout episodes,
    NaN/negative corruption, and descriptor misdeclaration (the
    wrapped source *claims* different [(mean, sigma2, H)] than it
    sends — the Hurst-mismatch case of measurement-based CAC).

    Determinism follows the {!Ss_parallel.Fanout} substream
    discipline: {!wrap_all} splits one substream per source in index
    order on the caller, and {!wrap} splits one substream per event
    in spec order, so every fault schedule is a fixed function of
    (seed, source index, event index) — bit-identical at any domain
    count, and independent of which other sources carry faults. *)

type event =
  | Drift of { start : int; ramp : int; factor : float }
      (** From slot [start], scale work linearly over [ramp] slots up
          to [factor] (times the clean value); [ramp = 0] jumps
          immediately. [factor 4.0] is a 4x mean drift. *)
  | Burst of { rate : float; mean_len : float; amplitude : float }
      (** Stochastic episodes: each quiet slot enters a burst with
          probability [rate]; lengths are rounded exponentials of
          mean [mean_len] (min 1); inside an episode work is scaled
          by [amplitude]. *)
  | Stall of { start : int; len : int }
      (** Scripted outage: slots [start, start+len) emit zero work. *)
  | Dropout of { rate : float; mean_len : float }
      (** Stochastic outages with the same episode process as
          [Burst], emitting zero work inside episodes. *)
  | Corrupt of { rate : float }
      (** Each slot is independently corrupted with probability
          [rate]: the work becomes NaN or a negative value (fair
          coin). Exercises {!Mux.run} sanitization. *)
  | Misdeclare of { mean : float option; sigma2 : float option; hurst : float option }
      (** Override the wrapper's *declared* descriptor fields while
          leaving the traffic untouched: the source lies to CAC. *)

val validate : event -> unit
(** @raise Invalid_argument on malformed parameters (negative
    starts/ramps, rates outside [0,1], non-positive episode lengths,
    non-finite scales, misdeclared values that would not form a valid
    descriptor). *)

val wrap : ?name:string -> rng:Ss_stats.Rng.t -> event list -> Source.t -> Source.t
(** Apply the events (in order) to the source's per-slot work. The
    empty list returns the source {e physically unchanged} (same
    closure, no rng consumed) — the zero-fault path stays
    bit-identical to the unwrapped one. [name] defaults to the
    source's name suffixed with ["!"]. The declared
    [mean]/[sigma2]/[hurst] are the source's own unless a
    [Misdeclare] event overrides them.
    @raise Invalid_argument on a malformed event. *)

val wrap_all :
  rng:Ss_stats.Rng.t -> (int option * event list) list -> Source.t array -> Source.t array
(** Apply parsed spec groups to a source array: group target [Some i]
    hits source [i], [None] (["*"]) hits every source; a source
    matched by several groups gets their events concatenated in spec
    order. One substream per source is split in index order whether
    or not that source is targeted.
    @raise Invalid_argument on an out-of-range target or malformed
    event. *)

val parse : string -> (int option * event list) list
(** Parse a [--faults] spec: semicolon-separated groups
    [target:event,event,...] with target [*] or a source index, and
    events
    [drift@START+RAMPxFACTOR], [burst@RATE+LENxAMP],
    [stall@START+LEN], [dropout@RATE+LEN], [corrupt@RATE],
    [mean=V], [sigma2=V], [hurst=V] (the last three misdeclare the
    descriptor). Example:
    ["0:drift@10000+1000x4.0;*:corrupt@0.001"].
    @raise Invalid_argument on a malformed spec. *)

val pp_event : Format.formatter -> event -> unit

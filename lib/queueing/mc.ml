module Rng = Ss_stats.Rng

type estimate = {
  p : float;
  variance : float;
  normalized_variance : float;
  replications : int;
  hits : int;
}

let estimate_of_samples samples =
  let n = Array.length samples in
  if n = 0 then invalid_arg "Mc.estimate_of_samples: no samples";
  let p = Ss_stats.Descriptive.mean samples in
  let variance = if n > 1 then Ss_stats.Descriptive.sample_variance samples else 0.0 in
  let hits = Array.fold_left (fun a s -> if s <> 0.0 then a + 1 else a) 0 samples in
  let normalized_variance = if p > 0.0 then variance /. (p *. p) else infinity in
  { p; variance; normalized_variance; replications = n; hits }

let estimate_of_log_samples log_samples =
  let n = Array.length log_samples in
  if n = 0 then invalid_arg "Mc.estimate_of_log_samples: no samples";
  Array.iter
    (fun lw -> if Float.is_nan lw then invalid_arg "Mc.estimate_of_log_samples: NaN sample")
    log_samples;
  let fn = float_of_int n in
  let hits = Array.fold_left (fun a lw -> if lw > neg_infinity then a + 1 else a) 0 log_samples in
  if hits = 0 then
    { p = 0.0; variance = 0.0; normalized_variance = infinity; replications = n; hits }
  else begin
    (* Log-sum-exp against the largest log weight: s1 and s2 are the
       first and second moments of the weights rescaled by exp(-m),
       so the normalized variance below never touches exp(m) at all
       and survives log weights far below the double underflow
       threshold. *)
    let m = Array.fold_left Stdlib.max neg_infinity log_samples in
    let s1 = ref 0.0 and s2 = ref 0.0 in
    Array.iter
      (fun lw ->
        if lw > neg_infinity then begin
          let w = exp (lw -. m) in
          s1 := !s1 +. w;
          s2 := !s2 +. (w *. w)
        end)
      log_samples;
    let p = exp (m +. log (!s1 /. fn)) in
    let scaled_var = if n > 1 then (!s2 -. (!s1 *. !s1 /. fn)) /. (fn -. 1.0) else 0.0 in
    let scaled_var = Stdlib.max 0.0 scaled_var in
    let variance = exp (2.0 *. m) *. scaled_var in
    let normalized_variance =
      if !s1 > 0.0 then scaled_var /. (!s1 /. fn) /. (!s1 /. fn) else infinity
    in
    { p; variance; normalized_variance; replications = n; hits }
  end

let overflow_probability ?pool ~gen ~service ~buffer ?(initial_workload = 0.0) ~horizon
    ~replications rng =
  if horizon <= 0 then invalid_arg "Mc.overflow_probability: horizon <= 0";
  if replications <= 0 then invalid_arg "Mc.overflow_probability: replications <= 0";
  let samples =
    Ss_parallel.Fanout.map ?pool ~rng ~n:replications (fun sub _ ->
        let arrivals = gen sub in
        if Array.length arrivals < horizon then
          invalid_arg "Mc.overflow_probability: generated path shorter than horizon";
        let arrivals =
          if Array.length arrivals = horizon then arrivals else Array.sub arrivals 0 horizon
        in
        (* First passage of the unreflected workload (paper Eq 17). *)
        if initial_workload +. Lindley.sup_workload ~service arrivals > buffer then 1.0
        else 0.0)
  in
  estimate_of_samples samples

let confidence_interval e ~z =
  let half = z *. sqrt (e.variance /. float_of_int e.replications) in
  (Stdlib.max 0.0 (e.p -. half), Stdlib.min 1.0 (e.p +. half))

module Rng = Ss_stats.Rng

let superpose ?(truncate = false) sources =
  match sources with
  | [] -> invalid_arg "Workload.superpose: no sources"
  | first :: _ ->
    List.iter
      (fun s -> if Array.length s = 0 then invalid_arg "Workload.superpose: empty source")
      sources;
    let n = List.fold_left (fun acc s -> Stdlib.min acc (Array.length s)) (Array.length first) sources in
    if not truncate then
      List.iter
        (fun s ->
          if Array.length s <> n then
            invalid_arg
              (Printf.sprintf
                 "Workload.superpose: source lengths differ (%d vs %d); pass ~truncate:true \
                  to sum over the common prefix"
                 (Array.length s) n))
        sources;
    Array.init n (fun i -> List.fold_left (fun acc s -> acc +. s.(i)) 0.0 sources)

let superpose_gen gen ~sources rng =
  if sources <= 0 then invalid_arg "Workload.superpose_gen: sources <= 0";
  superpose ~truncate:true (List.init sources (fun _ -> gen (Rng.split rng)))

let scale factor xs = Array.map (fun v -> factor *. v) xs

let peak_to_mean xs =
  let mean = Ss_stats.Descriptive.mean xs in
  if mean = 0.0 then invalid_arg "Workload.peak_to_mean: zero mean";
  Ss_stats.Descriptive.max xs /. mean

(** Arrival-process composition for the ATM multiplexer.

    The paper's motivation (Section 1) is statistical multiplexing:
    many VBR sources share one buffer. This module superposes
    independent sources — slot-wise addition of their arrival
    processes — so the [abl-mux] bench can quantify the multiplexing
    gain (per-source overflow drops as sources are added at equal
    utilization) and its erosion under long-range dependence. *)

val superpose : ?truncate:bool -> float array list -> float array
(** Slot-wise sum. All sources must have the same length; pass
    [~truncate:true] to instead sum over the common prefix of
    unequal-length sources (the pre-1.1 silent behaviour).
    @raise Invalid_argument on an empty list, an empty source, or
    (without [truncate]) a length mismatch. *)

val superpose_gen :
  (Ss_stats.Rng.t -> float array) -> sources:int -> Ss_stats.Rng.t -> float array
(** [superpose_gen gen ~sources rng] draws [sources] independent
    paths (one split substream each) and superposes them (with
    [~truncate:true], for generators of data-dependent length).
    @raise Invalid_argument if [sources <= 0]. *)

val scale : float -> float array -> float array
(** Multiply every slot (e.g. unit conversion). *)

val peak_to_mean : float array -> float
(** Burstiness summary: max over mean.
    @raise Invalid_argument on empty input or zero mean. *)

(** Plain (non-twisted) Monte Carlo estimation of buffer-overflow
    probabilities, with replication bookkeeping shared by the
    importance sampler.

    The overflow event is the paper's Eq (17): first passage of the
    cumulative workload [W_i = sum_{j<=i} (Y_j - mu)] above the
    buffer within the horizon — which, for an initially empty queue
    and stationary arrivals, has exactly the transient overflow
    probability [Pr(Q_k > b)] (and converges to the steady-state
    overflow probability as the horizon grows). Serves as the
    baseline against which importance sampling's variance reduction
    is measured. *)

type estimate = {
  p : float;  (** point estimate of the overflow probability *)
  variance : float;  (** sample variance of the per-replication indicator/weight *)
  normalized_variance : float;
      (** [variance / p^2], the figure of merit of Fig 14; [infinity]
          when [p = 0] *)
  replications : int;
  hits : int;  (** replications in which overflow occurred *)
}

val estimate_of_samples : float array -> estimate
(** Build the record from per-replication unbiased samples (indicator
    values for plain MC, [I*L] for IS). [hits] counts nonzero
    samples. @raise Invalid_argument on empty input. *)

val estimate_of_log_samples : float array -> estimate
(** Like {!estimate_of_samples}, but each sample is given as its
    natural logarithm, with [neg_infinity] encoding a zero sample (a
    replication that missed the event). All moments are accumulated
    by log-sum-exp against the largest log weight, so the
    [normalized_variance] figure of merit stays finite and exact even
    when every individual weight [exp lw] would underflow to 0 — the
    regime deep-buffer / long-horizon importance sampling lives in.
    [p] and [variance] are reported in the linear domain and may
    themselves underflow when the estimated probability is below
    ~1e-308; [hits] counts samples above [neg_infinity].
    @raise Invalid_argument on empty input or a NaN sample. *)

val overflow_probability :
  ?pool:Ss_parallel.Pool.t ->
  gen:(Ss_stats.Rng.t -> float array) ->
  service:float ->
  buffer:float ->
  ?initial_workload:float ->
  horizon:int ->
  replications:int ->
  Ss_stats.Rng.t ->
  estimate
(** [overflow_probability ~gen ~service ~buffer ~horizon
    ~replications rng] draws [replications] independent arrival paths
    (each generator call receives a split substream and must return
    at least [horizon] slots of arrivals) and estimates
    [Pr(initial_workload + sup_{i<=horizon} W_i > buffer)]
    ([initial_workload] defaults to 0). With [pool] the replications
    fan out across domains via {!Ss_parallel.Fanout}; the estimate is
    bit-identical for any pool size, including none. [gen] must then
    be safe to call from several domains at once (pure up to its
    substream argument — every generator in this repository is).
    @raise Invalid_argument on nonpositive horizon or replications,
    or if a generated path is shorter than the horizon. *)

val confidence_interval : estimate -> z:float -> float * float
(** Normal-approximation CI for [p] at the given z-value (e.g. 1.96
    for 95%), clamped to [\[0, 1\]]. The lower bound is 0 whenever no
    hits were seen — which for rare events is exactly why the paper
    needs importance sampling. *)

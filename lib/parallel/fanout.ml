module Rng = Ss_stats.Rng

let map ?pool ~rng ~n f =
  if n < 0 then invalid_arg "Fanout.map: n < 0";
  if n = 0 then [||]
  else begin
    let subs = Rng.split_n rng n in
    match pool with
    | None ->
      let out = Array.make n (f subs.(0) 0) in
      for i = 1 to n - 1 do
        out.(i) <- f subs.(i) i
      done;
      out
    | Some p -> Pool.run p (Array.init n (fun i () -> f subs.(i) i))
  end

let fold ?pool ~rng ~n ~f ~init g = Array.fold_left f init (map ?pool ~rng ~n g)

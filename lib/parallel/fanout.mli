(** Deterministic parallel fan-out of replicated stochastic work.

    The combinator fixes the two places where parallelism could leak
    into results: randomness and reduction order. Substreams are
    derived by calling {!Ss_stats.Rng.split} [n] times {e on the
    calling domain, in item order} — so the parent generator advances
    exactly as the sequential code would — and item [i] always
    receives substream [i]. Results are then combined in item order
    on the calling domain. Consequently an estimate computed through
    [Fanout] is bit-identical for any pool size, including the
    [pool = None] sequential path: the domain count is a pure
    wall-clock knob.

    This is the engine behind [Mc.overflow_probability],
    [Is_estimator.estimate] and the bench sweep cells. *)

val map : ?pool:Pool.t -> rng:Ss_stats.Rng.t -> n:int -> (Ss_stats.Rng.t -> int -> 'a) -> 'a array
(** [map ?pool ~rng ~n f] splits [n] substreams off [rng] (advancing
    it), runs [f sub_i i] for each item across the pool (or
    sequentially when [pool] is [None]) and returns results in item
    order. [f] must use only its own substream.
    @raise Invalid_argument if [n < 0]. *)

val fold :
  ?pool:Pool.t ->
  rng:Ss_stats.Rng.t ->
  n:int ->
  f:('acc -> 'a -> 'acc) ->
  init:'acc ->
  (Ss_stats.Rng.t -> int -> 'a) ->
  'acc
(** [fold] is {!map} followed by a sequential fold in item order on
    the calling domain; deterministic for non-associative [f]. *)

(** Fixed-size pool of OCaml 5 domains for deterministic data
    parallelism.

    A pool owns [domains - 1] worker domains (the calling domain is
    the remaining participant), created once and reused across many
    batches — spawning a domain costs far more than dispatching a
    batch, so the expensive loops of this repository (replication
    fan-outs, multiplexer source advances, Durbin–Levinson dot
    products) share one pool per process.

    Every combinator is {e deterministic}: work item [i] always runs
    the same closure, results land in slot [i], and any reduction is
    performed on the calling domain in fixed item order. The number
    of domains therefore never changes a result, only the wall-clock
    time — a pool of size 1 executes the identical arithmetic
    sequentially. This is what lets the simulation layers guarantee
    bit-identical estimates for any [--domains] setting. *)

type t
(** A pool handle. Values of this type are safe to share between
    batches but batches must be submitted from one domain at a time
    (the library never submits concurrently). *)

val create : domains:int -> t
(** [create ~domains] spawns [domains - 1] worker domains.
    [domains = 1] is a valid degenerate pool that runs everything on
    the caller. @raise Invalid_argument if [domains < 1] or
    [domains > 128]. *)

val size : t -> int
(** Number of participating domains (workers + caller). *)

val shutdown : t -> unit
(** Join and release the worker domains. Idempotent. Using the pool
    after shutdown raises [Invalid_argument]. *)

val with_pool : domains:int -> (t option -> 'a) -> 'a
(** [with_pool ~domains f] runs [f (Some pool)] with a fresh pool
    when [domains > 1], or [f None] when [domains <= 1] (the
    sequential path), and shuts the pool down afterwards even on
    exceptions. *)

val env_domains : unit -> int
(** Domain count requested by the [SS_DOMAINS] environment variable;
    1 (sequential) when unset, empty or not a positive integer. *)

val run : t -> (unit -> 'a) array -> 'a array
(** [run t thunks] executes every thunk exactly once across the
    pool's domains and returns the results in input order. If any
    thunk raises, all thunks still execute, and the exception of the
    {e lowest-indexed} failing thunk is re-raised (deterministic
    regardless of scheduling). *)

val map : t -> ('a -> 'b) -> 'a array -> 'b array
(** [map t f xs] is [run] over [fun () -> f xs.(i)]; order
    preserved. *)

val fold : t -> f:('acc -> 'b -> 'acc) -> init:'acc -> ('a -> 'b) -> 'a array -> 'acc
(** [fold t ~f ~init g xs] maps [g] across the pool, then folds the
    results with [f] on the calling domain in index order — the
    combination is deterministic even for non-associative [f]
    (floating-point sums included). *)

val static_for : t -> n:int -> (int -> unit) -> unit -> unit
(** [static_for t ~n f] precompiles a batch that runs [f i] once for
    every [0 <= i < n] (one item per index, like
    [parallel_for ~chunk:1]) and returns a reusable trigger: calling
    it dispatches the batch without rebuilding the [n] item closures
    — for hot loops that fan out over the same range thousands of
    times. Same determinism contract as {!run}; [f] must only write
    to disjoint-per-index locations. The trigger must not be invoked
    concurrently with itself or other batches, and raises
    [Invalid_argument] after {!shutdown}.
    @raise Invalid_argument if [n <= 0]. *)

val parallel_for : t -> ?chunk:int -> lo:int -> hi:int -> (int -> unit) -> unit
(** [parallel_for t ~lo ~hi f] runs [f i] once for every
    [lo <= i <= hi] (inclusive; empty when [hi < lo]), splitting the
    range into chunks of [chunk] consecutive indices (default: range
    split in [4 * size t] pieces). Within a chunk indices run in
    increasing order on one domain. [f] must only write to
    disjoint-per-index locations. @raise Invalid_argument if
    [chunk < 1]. *)

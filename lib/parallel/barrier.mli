(** Coarse per-block barrier over a fixed set of shard tasks.

    A barrier is a prebuilt fan-out: [make ?pool ~tasks f] compiles
    one closure per task index once, and every [run] executes
    [f 0 .. f (tasks - 1)] exactly once each, returning only when all
    of them have completed. The sharded multiplexer uses one task per
    shard and one [run] per staged block, so cross-domain
    synchronization happens once per block — never per slot or per
    source.

    Determinism contract (same as {!Pool.static_for}): task [s]
    always runs the same closure, and tasks must only write state
    disjoint per task index. Any cross-task reduction belongs on the
    calling domain after [run] returns, in task order — under that
    discipline the results are bit-identical with or without a pool,
    at any domain count. Without a pool (or with a 1-domain pool, or
    a single task) [run] executes the tasks sequentially on the
    caller in task order. *)

type t

exception Task_error of { task : int; exn : exn }
(** A task body raised [exn] while running as task [task]. Raised by
    {!run} on the calling domain after the block completes — worker
    failures never wedge the barrier. *)

val make : ?pool:Pool.t -> tasks:int -> (int -> unit) -> t
(** [make ?pool ~tasks f] prebuilds the fan-out. The closures capture
    [f] once; state [f] reads may change between [run]s (the
    multiplexer's current-block cursor does). With [pool], [run]
    dispatches through {!Pool.static_for} and raises
    [Invalid_argument] after {!Pool.shutdown}.
    @raise Invalid_argument if [tasks < 1]. *)

val tasks : t -> int
(** Number of tasks per [run]. *)

val run : t -> unit
(** Execute every task once; returns when all have completed. Must
    not be invoked concurrently with itself or other batches on the
    same pool (the library never does).

    If a task raises, its exception is captured (peers still run and
    the pool join completes — no deadlock), and [run] re-raises it on
    the caller as {!Task_error} carrying the lowest failing task
    index, with the original backtrace. The barrier is then poisoned:
    the disjoint per-task state may be torn mid-block, so every
    subsequent [run] re-raises the same {!Task_error} instead of
    computing on corrupt state. Sequential (pool-less) dispatch
    behaves identically. *)

val poisoned : t -> bool
(** True once a [run] has failed; the barrier refuses further use. *)

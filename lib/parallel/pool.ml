(* Fixed-size domain pool. Workers block on a condition variable
   until a batch is published; items are claimed with an atomic
   counter so a slow item does not leave domains idle while others
   remain. Determinism comes from the item->slot mapping and from all
   reductions happening on the calling domain in index order, never
   from scheduling. *)

type batch = {
  work : unit -> unit;  (* claims items until the batch is drained *)
  id : int;  (* generation tag so a worker joins each batch once *)
}

type t = {
  size : int;
  mutex : Mutex.t;
  work_ready : Condition.t;
  batch_done : Condition.t;
  mutable batch : batch option;
  mutable active : int;  (* workers currently inside a batch *)
  mutable next_id : int;
  mutable stop : bool;
  mutable workers : unit Domain.t list;
  mutable alive : bool;
}

let worker_loop t =
  let last = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock t.mutex;
    let rec await () =
      if t.stop then ()
      else
        match t.batch with
        | Some b when b.id <> !last -> ()
        | _ ->
          Condition.wait t.work_ready t.mutex;
          await ()
    in
    await ();
    if t.stop then begin
      Mutex.unlock t.mutex;
      running := false
    end
    else begin
      let b = Option.get t.batch in
      last := b.id;
      t.active <- t.active + 1;
      Mutex.unlock t.mutex;
      (* [work] captures its own exceptions; nothing escapes here. *)
      b.work ();
      Mutex.lock t.mutex;
      t.active <- t.active - 1;
      if t.active = 0 then Condition.broadcast t.batch_done;
      Mutex.unlock t.mutex
    end
  done

let create ~domains =
  if domains < 1 || domains > 128 then invalid_arg "Pool.create: domains outside [1, 128]";
  let t =
    {
      size = domains;
      mutex = Mutex.create ();
      work_ready = Condition.create ();
      batch_done = Condition.create ();
      batch = None;
      active = 0;
      next_id = 0;
      stop = false;
      workers = [];
      alive = true;
    }
  in
  t.workers <- List.init (domains - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let size t = t.size

let shutdown t =
  if t.alive then begin
    t.alive <- false;
    Mutex.lock t.mutex;
    t.stop <- true;
    Condition.broadcast t.work_ready;
    Mutex.unlock t.mutex;
    List.iter Domain.join t.workers;
    t.workers <- []
  end

let env_domains () =
  match Option.bind (Sys.getenv_opt "SS_DOMAINS") int_of_string_opt with
  | Some n when n >= 1 -> n
  | _ -> 1

let with_pool ~domains f =
  if domains <= 1 then f None
  else begin
    let t = create ~domains in
    Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f (Some t))
  end

let check_alive t name = if not t.alive then invalid_arg ("Pool." ^ name ^ ": pool shut down")

(* On a machine with no real parallelism, waking worker domains for a
   batch only adds scheduler round-trips at every join — the caller
   claims items from the same atomic counter either way, so running
   the whole batch on the calling domain is the identical computation
   minus the oversubscription tax. *)
let hw_parallelism = Domain.recommended_domain_count ()

let run t thunks =
  check_alive t "run";
  let n = Array.length thunks in
  if n = 0 then [||]
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    (* First error by item index, so a failure is reproducible under
       any scheduling. *)
    let error = Atomic.make None in
    let work () =
      let continue = ref true in
      while !continue do
        let i = Atomic.fetch_and_add next 1 in
        if i >= n then continue := false
        else
          match thunks.(i) () with
          | v -> results.(i) <- Some v
          | exception e ->
            let bt = Printexc.get_raw_backtrace () in
            let rec record () =
              match Atomic.get error with
              | Some (j, _, _) when j < i -> ()
              | cur -> if not (Atomic.compare_and_set error cur (Some (i, e, bt))) then record ()
            in
            record ()
      done
    in
    if t.size = 1 || n = 1 || hw_parallelism <= 1 then work ()
    else begin
      Mutex.lock t.mutex;
      t.next_id <- t.next_id + 1;
      t.batch <- Some { work; id = t.next_id };
      Condition.broadcast t.work_ready;
      Mutex.unlock t.mutex;
      (* The caller is a participant, not just a dispatcher. *)
      work ();
      Mutex.lock t.mutex;
      while t.active > 0 do
        Condition.wait t.batch_done t.mutex
      done;
      t.batch <- None;
      Mutex.unlock t.mutex
    end;
    match Atomic.get error with
    | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
    | None ->
      Array.map (function Some v -> v | None -> invalid_arg "Pool.run: lost item") results
  end

let map t f xs = run t (Array.map (fun x () -> f x) xs)

let fold t ~f ~init g xs = Array.fold_left f init (map t g xs)

(* Repeated fan-outs over a fixed index range (the multiplexer's
   per-block source prefetch) build their item closures once instead
   of once per batch; only the per-batch claim/result machinery of
   [run] remains. *)
let static_for t ~n f =
  check_alive t "static_for";
  if n <= 0 then invalid_arg "Pool.static_for: n <= 0";
  let thunks = Array.init n (fun i () -> f i) in
  fun () -> ignore (run t thunks : unit array)

let parallel_for t ?chunk ~lo ~hi f =
  check_alive t "parallel_for";
  if hi >= lo then begin
    let span = hi - lo + 1 in
    let chunk =
      match chunk with
      | Some c when c >= 1 -> c
      | Some _ -> invalid_arg "Pool.parallel_for: chunk < 1"
      | None -> Stdlib.max 1 ((span + (4 * t.size) - 1) / (4 * t.size))
    in
    let chunks = (span + chunk - 1) / chunk in
    let thunks =
      Array.init chunks (fun c ->
          fun () ->
            let a = lo + (c * chunk) in
            let b = Stdlib.min hi (a + chunk - 1) in
            for i = a to b do
              f i
            done)
    in
    ignore (run t thunks)
  end

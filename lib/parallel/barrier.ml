(* Per-block barrier over a fixed set of shard tasks. The multiplexer
   dispatches the same [tasks] closures once per staged block — the
   closures are compiled at [make] time (via [Pool.static_for]), and
   [run] returns only when every task of the block has completed, so
   the caller can merge shard aggregates knowing no shard is still
   writing. One task per shard keeps the fan-out coarse: the pool is
   touched once per block, never once per slot or per source. *)

type t = { tasks : int; dispatch : unit -> unit }

let make ?pool ~tasks f =
  if tasks < 1 then invalid_arg "Barrier.make: tasks < 1";
  let dispatch =
    match pool with
    | Some p when Pool.size p > 1 && tasks > 1 -> Pool.static_for p ~n:tasks f
    | _ ->
      (* Sequential path: the caller executes every task in shard
         order. Tasks must be insensitive to execution order (they
         write disjoint state), so this is the same arithmetic the
         pooled dispatch produces. *)
      fun () ->
        for s = 0 to tasks - 1 do
          f s
        done
  in
  { tasks; dispatch }

let tasks t = t.tasks
let run t = t.dispatch ()

(* Per-block barrier over a fixed set of shard tasks. The multiplexer
   dispatches the same [tasks] closures once per staged block — the
   closures are compiled at [make] time (via [Pool.static_for]), and
   [run] returns only when every task of the block has completed, so
   the caller can merge shard aggregates knowing no shard is still
   writing. One task per shard keeps the fan-out coarse: the pool is
   touched once per block, never once per slot or per source.

   Supervision: a task body that raises must not wedge the block. The
   barrier wraps every task so the exception is captured instead of
   escaping into the pool machinery — peers finish their tasks and the
   pool join completes normally — and [run] then re-raises it on the
   caller as [Task_error] with the failing shard index. The barrier is
   poisoned from that point: the shard state is torn mid-block, so any
   further [run] refuses with the original error rather than silently
   producing garbage. *)

exception Task_error of { task : int; exn : exn }

let () =
  Printexc.register_printer (function
    | Task_error { task; exn } ->
      Some
        (Printf.sprintf "Ss_parallel.Barrier.Task_error(task %d: %s)" task
           (Printexc.to_string exn))
    | _ -> None)

type failure = int * exn * Printexc.raw_backtrace

type t = {
  tasks : int;
  dispatch : unit -> unit;
  error : failure option Atomic.t;  (* first failure by task index *)
  mutable poisoned : (int * exn) option;
}

let make ?pool ~tasks f =
  if tasks < 1 then invalid_arg "Barrier.make: tasks < 1";
  let error = Atomic.make None in
  (* Lowest task index wins, so the surfaced failure is reproducible
     under any scheduling — the same discipline as [Pool.run]. *)
  let record s e bt =
    let rec retry () =
      match Atomic.get error with
      | Some (j, _, _) when j <= s -> ()
      | cur -> if not (Atomic.compare_and_set error cur (Some (s, e, bt))) then retry ()
    in
    retry ()
  in
  let g s = try f s with e -> record s e (Printexc.get_raw_backtrace ()) in
  let dispatch =
    match pool with
    | Some p when Pool.size p > 1 && tasks > 1 -> Pool.static_for p ~n:tasks g
    | _ ->
      (* Sequential path: the caller executes every task in shard
         order. Tasks must be insensitive to execution order (they
         write disjoint state), so this is the same arithmetic the
         pooled dispatch produces — including on failure, where the
         remaining tasks still run, as the pooled peers would. *)
      fun () ->
        for s = 0 to tasks - 1 do
          g s
        done
  in
  { tasks; dispatch; error; poisoned = None }

let tasks t = t.tasks

let run t =
  (match t.poisoned with
  | Some (task, exn) -> raise (Task_error { task; exn })
  | None -> ());
  t.dispatch ();
  match Atomic.get t.error with
  | None -> ()
  | Some (task, exn, bt) ->
    Atomic.set t.error None;
    t.poisoned <- Some (task, exn);
    Printexc.raise_with_backtrace (Task_error { task; exn }) bt

let poisoned t = Option.is_some t.poisoned

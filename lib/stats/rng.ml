(* xoshiro256++ with splitmix64 seeding. The cached Gaussian deviate
   from the polar method is stored in the state so that [copy] and
   [split] preserve reproducibility. *)

type t = {
  mutable s0 : int64;
  mutable s1 : int64;
  mutable s2 : int64;
  mutable s3 : int64;
  mutable gauss_cache : float;
  mutable gauss_full : bool;
}

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

(* splitmix64 step: returns next output and updated state. *)
let splitmix64 st =
  let st = Int64.add st 0x9E3779B97F4A7C15L in
  let z = st in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  (Int64.logxor z (Int64.shift_right_logical z 31), st)

let all_zero s0 s1 s2 s3 =
  Int64.equal s0 0L && Int64.equal s1 0L && Int64.equal s2 0L && Int64.equal s3 0L

let create ~seed =
  let st = Int64.of_int seed in
  let s0, st = splitmix64 st in
  let s1, st = splitmix64 st in
  let s2, st = splitmix64 st in
  let s3, _ = splitmix64 st in
  (* splitmix64 output of a fixed walk is never all-zero in practice,
     but guard anyway: an all-zero xoshiro state is absorbing. *)
  let s3 = if all_zero s0 s1 s2 s3 then 1L else s3 in
  { s0; s1; s2; s3; gauss_cache = 0.0; gauss_full = false }

let of_state a =
  if Array.length a <> 4 then invalid_arg "Rng.of_state: need 4 words";
  if all_zero a.(0) a.(1) a.(2) a.(3) then invalid_arg "Rng.of_state: all-zero state";
  { s0 = a.(0); s1 = a.(1); s2 = a.(2); s3 = a.(3); gauss_cache = 0.0; gauss_full = false }

let copy_into ~src ~dst =
  dst.s0 <- src.s0;
  dst.s1 <- src.s1;
  dst.s2 <- src.s2;
  dst.s3 <- src.s3;
  dst.gauss_cache <- src.gauss_cache;
  dst.gauss_full <- src.gauss_full

let copy t =
  {
    s0 = t.s0;
    s1 = t.s1;
    s2 = t.s2;
    s3 = t.s3;
    gauss_cache = t.gauss_cache;
    gauss_full = t.gauss_full;
  }

let bits64 t =
  let result = Int64.add (rotl (Int64.add t.s0 t.s3) 23) t.s0 in
  let tmp = Int64.shift_left t.s1 17 in
  t.s2 <- Int64.logxor t.s2 t.s0;
  t.s3 <- Int64.logxor t.s3 t.s1;
  t.s1 <- Int64.logxor t.s1 t.s2;
  t.s0 <- Int64.logxor t.s0 t.s3;
  t.s2 <- Int64.logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  (* Derive a child state by running splitmix64 from a word drawn
     from the parent; recommended practice for xoshiro seeding. *)
  let st = bits64 t in
  let s0, st = splitmix64 st in
  let s1, st = splitmix64 st in
  let s2, st = splitmix64 st in
  let s3, _ = splitmix64 st in
  let s3 = if all_zero s0 s1 s2 s3 then 1L else s3 in
  { s0; s1; s2; s3; gauss_cache = 0.0; gauss_full = false }

let split_n t n =
  if n < 0 then invalid_arg "Rng.split_n: n < 0";
  (* Explicit loop: callers rely on substream i being the i-th split
     of the parent stream, so the order must not depend on array
     initialization internals. *)
  let out = Array.make n t in
  for i = 0 to n - 1 do
    out.(i) <- split t
  done;
  out

let float t =
  (* 53 high bits -> uniform in [0,1). *)
  let bits = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float bits *. 0x1.0p-53

let float_range t a b =
  if b <= a then invalid_arg "Rng.float_range: empty range";
  a +. ((b -. a) *. float t)

let int_range t lo hi =
  if hi < lo then invalid_arg "Rng.int_range: empty range";
  let span = hi - lo + 1 in
  (* Rejection sampling on the low bits to avoid modulo bias. *)
  let mask =
    let rec grow m = if m >= span - 1 then m else grow ((m lsl 1) lor 1) in
    grow 1
  in
  let rec draw () =
    let v = Int64.to_int (Int64.logand (bits64 t) (Int64.of_int mask)) in
    if v < span then lo + v else draw ()
  in
  if span = 1 then lo else draw ()

let bool t = Int64.compare (Int64.logand (bits64 t) 1L) 0L <> 0

let gaussian t =
  if t.gauss_full then begin
    t.gauss_full <- false;
    t.gauss_cache
  end
  else begin
    (* Marsaglia polar method. *)
    let rec draw () =
      let u = (2.0 *. float t) -. 1.0 in
      let v = (2.0 *. float t) -. 1.0 in
      let s = (u *. u) +. (v *. v) in
      if s >= 1.0 || s = 0.0 then draw ()
      else begin
        let f = sqrt (-2.0 *. log s /. s) in
        t.gauss_cache <- v *. f;
        t.gauss_full <- true;
        u *. f
      end
    in
    draw ()
  end

let fill_gaussian t buf ~off ~len =
  if len < 0 || off < 0 || off + len > Array.length buf then
    invalid_arg "Rng.fill_gaussian: range outside the buffer";
  let i = ref off in
  let stop = off + len in
  if !i < stop && t.gauss_full then begin
    t.gauss_full <- false;
    Array.unsafe_set buf !i t.gauss_cache;
    incr i
  end;
  (* Same polar-pair state machine as [gaussian], batched: emit [u*f]
     then [v*f]; when the trailing [v*f] does not fit it lands in the
     cache, so the emitted sequence and final state are exactly those
     of [len] successive [gaussian] calls. *)
  while !i < stop do
    let u = (2.0 *. float t) -. 1.0 in
    let v = (2.0 *. float t) -. 1.0 in
    let s = (u *. u) +. (v *. v) in
    if not (s >= 1.0 || s = 0.0) then begin
      let f = sqrt (-2.0 *. log s /. s) in
      Array.unsafe_set buf !i (u *. f);
      incr i;
      if !i < stop then begin
        Array.unsafe_set buf !i (v *. f);
        incr i
      end
      else begin
        t.gauss_cache <- v *. f;
        t.gauss_full <- true
      end
    end
  done

module W = Ss_checkpoint.W
module R = Ss_checkpoint.R

let save t w =
  W.tag w "rng";
  W.i64 w t.s0;
  W.i64 w t.s1;
  W.i64 w t.s2;
  W.i64 w t.s3;
  W.float w t.gauss_cache;
  W.bool w t.gauss_full

let restore t r =
  R.tag r "rng";
  let s0 = R.i64 r in
  let s1 = R.i64 r in
  let s2 = R.i64 r in
  let s3 = R.i64 r in
  let gauss_cache = R.float r in
  let gauss_full = R.bool r in
  if all_zero s0 s1 s2 s3 then
    raise (Ss_checkpoint.Corrupt "rng: all-zero xoshiro state in checkpoint");
  (* In place: sources and kernels capture the generator by closure,
     so restore must mutate the live object, not return a fresh one. *)
  t.s0 <- s0;
  t.s1 <- s1;
  t.s2 <- s2;
  t.s3 <- s3;
  t.gauss_cache <- gauss_cache;
  t.gauss_full <- gauss_full

let gaussian_mv t ~mean ~std =
  if std < 0.0 then invalid_arg "Rng.gaussian_mv: negative std";
  mean +. (std *. gaussian t)

let exponential t ~rate =
  if rate <= 0.0 then invalid_arg "Rng.exponential: rate <= 0";
  -.log1p (-.float t) /. rate

let pareto t ~shape ~scale =
  if shape <= 0.0 || scale <= 0.0 then invalid_arg "Rng.pareto: bad parameters";
  scale /. ((1.0 -. float t) ** (1.0 /. shape))

(* Special functions, hand-rolled.

   erf/erfc follow the approach of combining a Maclaurin series for
   small |x| with a Lentz continued fraction for the tail, which gives
   near machine precision everywhere. log_gamma is the 15-term Lanczos
   approximation (g = 607/128) good to ~1e-13 relative. The normal
   quantile is Acklam's approximation with one Halley refinement. *)

let sqrt_pi = 1.7724538509055160273
let sqrt_2 = 1.4142135623730950488
let log_sqrt_2pi = 0.91893853320467274178

(* --- log gamma: Lanczos, g = 607/128, 15 coefficients --- *)

let lanczos_g = 607.0 /. 128.0

let lanczos_coef =
  [|
    0.99999999999999709182;
    57.156235665862923517;
    -59.597960355475491248;
    14.136097974741747174;
    -0.49191381609762019978;
    0.33994649984811888699e-4;
    0.46523628927048575665e-4;
    -0.98374475304879564677e-4;
    0.15808870322491248884e-3;
    -0.21026444172410488319e-3;
    0.21743961811521264320e-3;
    -0.16431810653676389022e-3;
    0.84418223983852743293e-4;
    -0.26190838401581408670e-4;
    0.36899182659531622704e-5;
  |]

let log_gamma x =
  if x <= 0.0 then invalid_arg "Special.log_gamma: x <= 0";
  (* Direct Lanczos is valid for x > 0. *)
  let s = ref lanczos_coef.(0) in
  for k = 1 to Array.length lanczos_coef - 1 do
    s := !s +. (lanczos_coef.(k) /. (x +. float_of_int k -. 1.0))
  done;
  let t = x +. lanczos_g -. 0.5 in
  ((x -. 0.5) *. log t) -. t +. log_sqrt_2pi +. log !s

(* --- digamma / trigamma: shift x above 8, then asymptotic series --- *)

let digamma x =
  if x <= 0.0 then invalid_arg "Special.digamma: x <= 0";
  let acc = ref 0.0 in
  let x = ref x in
  while !x < 8.0 do
    acc := !acc -. (1.0 /. !x);
    x := !x +. 1.0
  done;
  let inv = 1.0 /. !x in
  let inv2 = inv *. inv in
  (* psi(x) ~ ln x - 1/2x - 1/12x^2 + 1/120x^4 - 1/252x^6 + 1/240x^8 *)
  !acc +. log !x -. (0.5 *. inv)
  -. (inv2 *. (1.0 /. 12.0 -. (inv2 *. (1.0 /. 120.0 -. (inv2 *. (1.0 /. 252.0 -. (inv2 /. 240.0)))))))

let trigamma x =
  if x <= 0.0 then invalid_arg "Special.trigamma: x <= 0";
  let acc = ref 0.0 in
  let x = ref x in
  while !x < 8.0 do
    acc := !acc +. (1.0 /. (!x *. !x));
    x := !x +. 1.0
  done;
  let inv = 1.0 /. !x in
  let inv2 = inv *. inv in
  (* psi'(x) ~ 1/x + 1/2x^2 + 1/6x^3 - 1/30x^5 + 1/42x^7 - 1/30x^9 *)
  !acc +. (inv *. (1.0 +. (inv *. (0.5 +. (inv *. (1.0 /. 6.0 +. (inv2 *. ((-1.0 /. 30.0) +. (inv2 *. (1.0 /. 42.0 -. (inv2 /. 30.0)))))))))))

(* --- regularized incomplete gamma --- *)

(* Series expansion for P(a,x), efficient when x < a + 1. *)
let gamma_p_series a x =
  let gln = log_gamma a in
  if x = 0.0 then 0.0
  else begin
    let ap = ref a in
    let sum = ref (1.0 /. a) in
    let del = ref !sum in
    let continue = ref true in
    let iter = ref 0 in
    while !continue && !iter < 10_000 do
      incr iter;
      ap := !ap +. 1.0;
      del := !del *. x /. !ap;
      sum := !sum +. !del;
      if abs_float !del < abs_float !sum *. 1e-16 then continue := false
    done;
    !sum *. exp ((-.x) +. (a *. log x) -. gln)
  end

(* Modified Lentz continued fraction for Q(a,x), efficient when
   x >= a + 1. *)
let gamma_q_cf a x =
  let gln = log_gamma a in
  let tiny = 1e-300 in
  let b = ref (x +. 1.0 -. a) in
  let c = ref (1.0 /. tiny) in
  let d = ref (1.0 /. !b) in
  let h = ref !d in
  let continue = ref true in
  let i = ref 1 in
  while !continue && !i < 10_000 do
    let an = -.float_of_int !i *. (float_of_int !i -. a) in
    b := !b +. 2.0;
    d := (an *. !d) +. !b;
    if abs_float !d < tiny then d := tiny;
    c := !b +. (an /. !c);
    if abs_float !c < tiny then c := tiny;
    d := 1.0 /. !d;
    let del = !d *. !c in
    h := !h *. del;
    if abs_float (del -. 1.0) < 1e-16 then continue := false;
    incr i
  done;
  exp ((-.x) +. (a *. log x) -. gln) *. !h

let gamma_p a x =
  if a <= 0.0 then invalid_arg "Special.gamma_p: a <= 0";
  if x < 0.0 then invalid_arg "Special.gamma_p: x < 0";
  if x = 0.0 then 0.0
  else if x < a +. 1.0 then gamma_p_series a x
  else 1.0 -. gamma_q_cf a x

let gamma_q a x =
  if a <= 0.0 then invalid_arg "Special.gamma_q: a <= 0";
  if x < 0.0 then invalid_arg "Special.gamma_q: x < 0";
  if x = 0.0 then 1.0
  else if x < a +. 1.0 then 1.0 -. gamma_p_series a x
  else gamma_q_cf a x

(* --- error functions --- *)

(* Maclaurin series for erf, |x| small. *)
let erf_series x =
  let x2 = x *. x in
  let term = ref x in
  let sum = ref x in
  let n = ref 0 in
  let continue = ref true in
  while !continue && !n < 200 do
    incr n;
    let nf = float_of_int !n in
    term := !term *. (-.x2) /. nf;
    let add = !term /. ((2.0 *. nf) +. 1.0) in
    sum := !sum +. add;
    if abs_float add < 1e-17 *. abs_float !sum then continue := false
  done;
  2.0 /. sqrt_pi *. !sum

(* Continued fraction for erfc at x >= 2, evaluated by backward
   recurrence of the Laplace CF:
   erfc(x) = exp(-x^2)/sqrt(pi) * 1/(x + (1/2)/(x + 1/(x + (3/2)/(x + 2/(x + ...))))) *)
let erfc_cf x =
  let f = ref 0.0 in
  let depth = 60 + int_of_float (200.0 /. x) in
  for k = depth downto 1 do
    f := float_of_int k /. 2.0 /. (x +. !f)
  done;
  exp (-.(x *. x)) /. sqrt_pi /. (x +. !f)

let erfc_pos x = if x < 2.0 then 1.0 -. erf_series x else erfc_cf x
let erfc x = if x < 0.0 then 2.0 -. erfc_pos (-.x) else erfc_pos x

let erf x =
  if abs_float x < 2.0 then erf_series x
  else if x > 0.0 then 1.0 -. erfc_pos x
  else erfc_pos (-.x) -. 1.0

(* --- normal distribution helpers --- *)

let normal_pdf x = exp ((-0.5 *. x *. x) -. log_sqrt_2pi)
let normal_cdf x = 0.5 *. erfc (-.x /. sqrt_2)

(* Erf-free fast normal CDF: Abramowitz & Stegun 26.2.17, a degree-5
   polynomial in t = 1/(1 + 0.2316419 |x|) times the normal density,
   |error| < 7.5e-8 absolute on the whole real line. One exp and five
   multiply-adds, versus the series/continued-fraction loops behind
   [erfc] — this is the relaxed-tier hot-path CDF for the marginal
   transform, where 1e-7 absolute error in the probability is far
   below the statistical gates' resolution. *)
let normal_cdf_relaxed x =
  let ax = abs_float x in
  let t = 1.0 /. (1.0 +. (0.2316419 *. ax)) in
  let poly =
    t
    *. (0.319381530
       +. (t
          *. (-0.356563782
             +. (t *. (1.781477937 +. (t *. (-1.821255978 +. (t *. 1.330274429))))))))
  in
  let tail = normal_pdf ax *. poly in
  if x >= 0.0 then 1.0 -. tail else tail

(* Acklam's inverse normal CDF approximation. *)
let acklam p =
  let a =
    [|
      -3.969683028665376e+01; 2.209460984245205e+02; -2.759285104469687e+02;
      1.383577518672690e+02; -3.066479806614716e+01; 2.506628277459239e+00;
    |]
  in
  let b =
    [|
      -5.447609879822406e+01; 1.615858368580409e+02; -1.556989798598866e+02;
      6.680131188771972e+01; -1.328068155288572e+01;
    |]
  in
  let c =
    [|
      -7.784894002430293e-03; -3.223964580411365e-01; -2.400758277161838e+00;
      -2.549732539343734e+00; 4.374664141464968e+00; 2.938163982698783e+00;
    |]
  in
  let d =
    [|
      7.784695709041462e-03; 3.224671290700398e-01; 2.445134137142996e+00;
      3.754408661907416e+00;
    |]
  in
  let plow = 0.02425 in
  let phigh = 1.0 -. plow in
  if p < plow then begin
    let q = sqrt (-2.0 *. log p) in
    let num =
      ((((c.(0) *. q +. c.(1)) *. q +. c.(2)) *. q +. c.(3)) *. q +. c.(4)) *. q +. c.(5)
    in
    let den = (((d.(0) *. q +. d.(1)) *. q +. d.(2)) *. q +. d.(3)) *. q +. 1.0 in
    num /. den
  end
  else if p <= phigh then begin
    let q = p -. 0.5 in
    let r = q *. q in
    let num =
      (((((a.(0) *. r +. a.(1)) *. r +. a.(2)) *. r +. a.(3)) *. r +. a.(4)) *. r +. a.(5)) *. q
    in
    let den =
      ((((b.(0) *. r +. b.(1)) *. r +. b.(2)) *. r +. b.(3)) *. r +. b.(4)) *. r +. 1.0
    in
    num /. den
  end
  else begin
    let q = sqrt (-2.0 *. log (1.0 -. p)) in
    let num =
      ((((c.(0) *. q +. c.(1)) *. q +. c.(2)) *. q +. c.(3)) *. q +. c.(4)) *. q +. c.(5)
    in
    let den = (((d.(0) *. q +. d.(1)) *. q +. d.(2)) *. q +. d.(3)) *. q +. 1.0 in
    -.(num /. den)
  end

let normal_quantile p =
  if p <= 0.0 || p >= 1.0 then invalid_arg "Special.normal_quantile: p outside (0,1)";
  let x = acklam p in
  (* One Halley refinement against the accurate CDF. *)
  let e = normal_cdf x -. p in
  let u = e *. exp ((0.5 *. x *. x) +. log_sqrt_2pi) in
  x -. (u /. (1.0 +. (x *. u /. 2.0)))

let log_normal_pdf ~mean ~var x =
  if var <= 0.0 then invalid_arg "Special.log_normal_pdf: var <= 0";
  let d = x -. mean in
  (-0.5 *. d *. d /. var) -. (0.5 *. log var) -. log_sqrt_2pi

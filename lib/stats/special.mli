(** Special mathematical functions.

    Hand-rolled implementations of the classical special functions
    needed by the distribution and estimation code: error functions,
    the log-gamma function and the regularized incomplete gamma
    functions, plus the standard-normal CDF and its inverse. Accuracy
    targets (validated in the test suite): relative error below
    [1e-12] for [log_gamma], absolute error below [1e-13] for
    [erf]/[erfc] on the real line, and below [1e-9] for
    [normal_quantile] after Halley refinement. *)

val erf : float -> float
(** Error function [erf x = 2/sqrt(pi) * int_0^x exp(-t^2) dt]. *)

val erfc : float -> float
(** Complementary error function [1 - erf x], accurate for large [x]
    where [1 - erf x] underflows catastrophically. *)

val log_gamma : float -> float
(** Natural log of the gamma function for [x > 0] (Lanczos
    approximation). @raise Invalid_argument if [x <= 0]. *)

val digamma : float -> float
(** Logarithmic derivative of the gamma function, [psi(x)], for
    [x > 0] (recurrence down-shift + asymptotic series). Accurate to
    ~1e-12. @raise Invalid_argument if [x <= 0]. *)

val trigamma : float -> float
(** [psi'(x)] for [x > 0], same method. Used by the Newton step of
    the gamma maximum-likelihood fit.
    @raise Invalid_argument if [x <= 0]. *)

val gamma_p : float -> float -> float
(** [gamma_p a x] is the regularized lower incomplete gamma function
    [P(a,x) = gamma(a,x)/Gamma(a)] for [a > 0], [x >= 0].
    @raise Invalid_argument on domain violation. *)

val gamma_q : float -> float -> float
(** [gamma_q a x = 1 - gamma_p a x], the regularized upper tail. *)

val normal_cdf : float -> float
(** Standard normal cumulative distribution [Phi(x)]. *)

val normal_cdf_relaxed : float -> float
(** Fast approximate [Phi(x)]: Abramowitz & Stegun 26.2.17 (erf-free,
    one [exp] plus a degree-5 polynomial), absolute error below
    [7.5e-8] everywhere. The relaxed precision tier's hot-path CDF;
    default paths keep {!normal_cdf} so committed fixtures stay
    bitwise. *)

val normal_pdf : float -> float
(** Standard normal density [phi(x)]. *)

val normal_quantile : float -> float
(** Inverse of [normal_cdf] on (0,1): Acklam's rational approximation
    refined by one Halley step.
    @raise Invalid_argument if the argument is outside (0,1). *)

val log_normal_pdf : mean:float -> var:float -> float -> float
(** [log_normal_pdf ~mean ~var x] is the log-density of the
    N(mean,var) distribution at [x]; used for likelihood-ratio
    accumulation in log space. @raise Invalid_argument if
    [var <= 0]. *)

type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;  (* sum of squared deviations from the mean *)
  mutable min : float;
  mutable max : float;
}

let create () = { n = 0; mean = 0.0; m2 = 0.0; min = infinity; max = neg_infinity }

let add t x =
  t.n <- t.n + 1;
  let d = x -. t.mean in
  t.mean <- t.mean +. (d /. float_of_int t.n);
  t.m2 <- t.m2 +. (d *. (x -. t.mean));
  if x < t.min then t.min <- x;
  if x > t.max then t.max <- x

let count t = t.n
let check_nonempty t name = if t.n = 0 then invalid_arg ("Online_stats." ^ name ^ ": empty")

let mean t =
  check_nonempty t "mean";
  t.mean

let variance t =
  check_nonempty t "variance";
  t.m2 /. float_of_int t.n

let sample_variance t =
  if t.n < 2 then invalid_arg "Online_stats.sample_variance: fewer than two observations";
  t.m2 /. float_of_int (t.n - 1)

let std t = sqrt (variance t)

let min t =
  check_nonempty t "min";
  t.min

let max t =
  check_nonempty t "max";
  t.max

let merge a b =
  if a.n = 0 then { b with n = b.n }
  else if b.n = 0 then { a with n = a.n }
  else begin
    let na = float_of_int a.n and nb = float_of_int b.n in
    let n = na +. nb in
    let d = b.mean -. a.mean in
    {
      n = a.n + b.n;
      mean = a.mean +. (d *. nb /. n);
      m2 = a.m2 +. b.m2 +. (d *. d *. na *. nb /. n);
      min = Stdlib.min a.min b.min;
      max = Stdlib.max a.max b.max;
    }
  end

module W = Ss_checkpoint.W
module R = Ss_checkpoint.R

let save t w =
  W.tag w "welford";
  W.int w t.n;
  W.float w t.mean;
  W.float w t.m2;
  W.float w t.min;
  W.float w t.max

let restore t r =
  R.tag r "welford";
  t.n <- R.int r;
  t.mean <- R.float r;
  t.m2 <- R.float r;
  t.min <- R.float r;
  t.max <- R.float r

module Vt = struct
  (* Streaming variance-time analysis: level j aggregates the input
     into blocks of m = 2^j samples and feeds each completed block
     mean into a Welford accumulator. The slope of log10 var(level
     mean) on log10 m is 2H - 2 for an FGN-like input, so the H
     estimate is 1 + slope/2 — the online form of
     Hurst.variance_time. *)
  type level = { m : int; mutable sum : float; mutable filled : int; stats : t }

  type nonrec t = { levels : level array }

  let create ?(levels = 7) () =
    if levels < 3 then invalid_arg "Online_stats.Vt.create: levels < 3";
    if levels > 30 then invalid_arg "Online_stats.Vt.create: levels > 30";
    {
      levels =
        Array.init levels (fun j -> { m = 1 lsl j; sum = 0.0; filled = 0; stats = create () });
    }

  let add t x =
    Array.iter
      (fun l ->
        l.sum <- l.sum +. x;
        l.filled <- l.filled + 1;
        if l.filled = l.m then begin
          add l.stats (l.sum /. float_of_int l.m);
          l.sum <- 0.0;
          l.filled <- 0
        end)
      t.levels

  let count t = t.levels.(0).stats.n

  let min_blocks = 4

  let points t =
    Array.to_list t.levels
    |> List.filter_map (fun l ->
           if l.stats.n < min_blocks then None
           else
             let v = variance l.stats in
             if v <= 0.0 then None
             else Some (log10 (float_of_int l.m), log10 v))

  let estimate t =
    match points t with
    | pts when List.length pts >= 3 ->
      let fit = Regression.ols pts in
      Some (1.0 +. (fit.Regression.slope /. 2.0))
    | _ -> None

  (* [save]/[restore] in the bodies below are the outer Welford pair:
     these lets are not recursive, so the module-level bindings are
     still in scope on the right-hand side. *)
  let save t w =
    W.tag w "vt";
    W.int w (Array.length t.levels);
    Array.iter
      (fun l ->
        W.int w l.m;
        W.float w l.sum;
        W.int w l.filled;
        save l.stats w)
      t.levels

  let restore t r =
    R.tag r "vt";
    let n = R.int r in
    if n <> Array.length t.levels then
      raise
        (Ss_checkpoint.Corrupt
           (Printf.sprintf "vt: checkpoint has %d levels, estimator has %d" n
              (Array.length t.levels)));
    Array.iter
      (fun l ->
        let m = R.int r in
        if m <> l.m then
          raise
            (Ss_checkpoint.Corrupt
               (Printf.sprintf "vt: level block size %d in checkpoint, expected %d" m l.m));
        l.sum <- R.float r;
        l.filled <- R.int r;
        restore l.stats r)
      t.levels
end

module P2 = struct
  type nonrec t = {
    p : float;
    q : float array;  (* marker heights *)
    pos : float array;  (* marker positions (1-based, as in the paper) *)
    desired : float array;
    incr : float array;  (* per-observation drift of the desired positions *)
    mutable n : int;
  }

  let create ~p =
    if not (p > 0.0 && p < 1.0) then invalid_arg "Online_stats.P2.create: p outside (0,1)";
    {
      p;
      q = Array.make 5 0.0;
      pos = [| 1.0; 2.0; 3.0; 4.0; 5.0 |];
      desired = [| 1.0; 1.0 +. (2.0 *. p); 1.0 +. (4.0 *. p); 3.0 +. (2.0 *. p); 5.0 |];
      incr = [| 0.0; p /. 2.0; p; (1.0 +. p) /. 2.0; 1.0 |];
      n = 0;
    }

  let p t = t.p
  let count t = t.n

  (* Piecewise-parabolic height adjustment of marker [i] in direction
     [d] (+1 or -1); falls back to linear interpolation when the
     parabola would leave the bracketing heights. *)
  let adjust t i d =
    let q = t.q and pos = t.pos in
    let d_f = float_of_int d in
    let np = pos.(i + 1) -. pos.(i) and nm = pos.(i) -. pos.(i - 1) in
    let parabolic =
      q.(i)
      +. (d_f /. (pos.(i + 1) -. pos.(i - 1))
         *. (((nm +. d_f) *. (q.(i + 1) -. q.(i)) /. np)
            +. ((np -. d_f) *. (q.(i) -. q.(i - 1)) /. nm)))
    in
    let h =
      if q.(i - 1) < parabolic && parabolic < q.(i + 1) then parabolic
      else q.(i) +. (d_f *. (q.(i + d) -. q.(i)) /. (pos.(i + d) -. pos.(i)))
    in
    q.(i) <- h;
    pos.(i) <- pos.(i) +. d_f

  let add t x =
    t.n <- t.n + 1;
    if t.n <= 5 then begin
      (* Insertion into the sorted prefix. *)
      let i = ref (t.n - 1) in
      t.q.(!i) <- x;
      while !i > 0 && t.q.(!i - 1) > t.q.(!i) do
        let tmp = t.q.(!i - 1) in
        t.q.(!i - 1) <- t.q.(!i);
        t.q.(!i) <- tmp;
        decr i
      done
    end
    else begin
      let q = t.q and pos = t.pos in
      let k =
        if x < q.(0) then begin
          q.(0) <- x;
          0
        end
        else if x >= q.(4) then begin
          q.(4) <- x;
          3
        end
        else begin
          let k = ref 0 in
          while x >= q.(!k + 1) do
            incr k
          done;
          !k
        end
      in
      for i = k + 1 to 4 do
        pos.(i) <- pos.(i) +. 1.0
      done;
      for i = 0 to 4 do
        t.desired.(i) <- t.desired.(i) +. t.incr.(i)
      done;
      for i = 1 to 3 do
        let d = t.desired.(i) -. pos.(i) in
        if
          (d >= 1.0 && pos.(i + 1) -. pos.(i) > 1.0)
          || (d <= -1.0 && pos.(i - 1) -. pos.(i) < -1.0)
        then adjust t i (if d >= 0.0 then 1 else -1)
      done
    end

  let quantile t =
    if t.n = 0 then invalid_arg "Online_stats.P2.quantile: empty";
    if t.n > 5 then t.q.(2)
    else begin
      (* Exact type-7 quantile on the sorted prefix. When the rank is
         integral the answer is that order statistic itself: the
         interpolation must not touch the neighbouring marker, whose
         weight-zero contribution would still poison the result with
         NaN if it holds an infinity (0 * inf = nan). *)
      let n = t.n in
      let h = t.p *. float_of_int (n - 1) in
      let lo = int_of_float (floor h) in
      let hi = Stdlib.min (lo + 1) (n - 1) in
      let w = h -. float_of_int lo in
      if w <= 0.0 || hi = lo then t.q.(lo)
      else if w >= 1.0 then t.q.(hi)
      else ((1.0 -. w) *. t.q.(lo)) +. (w *. t.q.(hi))
    end

  let save t w =
    W.tag w "p2";
    W.float w t.p;
    W.float_array w t.q;
    W.float_array w t.pos;
    W.float_array w t.desired;
    W.int w t.n

  let restore t r =
    R.tag r "p2";
    let p = R.float r in
    if Int64.bits_of_float p <> Int64.bits_of_float t.p then
      raise
        (Ss_checkpoint.Corrupt
           (Printf.sprintf "p2: checkpoint tracks p=%.17g, estimator tracks p=%.17g" p t.p));
    R.float_array_into r t.q;
    R.float_array_into r t.pos;
    R.float_array_into r t.desired;
    t.n <- R.int r
end

(** Streaming (single-pass, O(1)-memory) summary statistics.

    The multiplexer engine ({!Ss_mux}) tracks per-source loss, queue
    occupancy and delay over millions of slots without storing sample
    paths; this module provides the accumulators it needs: Welford's
    numerically stable mean/variance recursion and the P² dynamic
    quantile estimator of Jain & Chlamtac (CACM 1985), which tracks a
    quantile with five markers and no stored observations.

    All accumulators are mutable and single-threaded. *)

type t
(** Welford accumulator: count, mean, variance, min, max. *)

val create : unit -> t
(** Fresh empty accumulator. *)

val add : t -> float -> unit
(** Feed one observation. *)

val count : t -> int

val mean : t -> float
(** @raise Invalid_argument on an empty accumulator. *)

val variance : t -> float
(** Population (1/n) variance, matching {!Descriptive.variance}.
    @raise Invalid_argument on an empty accumulator. *)

val sample_variance : t -> float
(** Unbiased (1/(n-1)) variance, matching
    {!Descriptive.sample_variance}. @raise Invalid_argument with
    fewer than two observations. *)

val std : t -> float
(** Square root of {!variance}. *)

val min : t -> float
(** @raise Invalid_argument on an empty accumulator. *)

val max : t -> float
(** @raise Invalid_argument on an empty accumulator. *)

val merge : t -> t -> t
(** Parallel (Chan et al.) combination of two accumulators; neither
    input is mutated. Exact for count/min/max, numerically stable for
    mean/variance. *)

val save : t -> Ss_checkpoint.W.t -> unit
val restore : t -> Ss_checkpoint.R.t -> unit
(** Checkpoint codec: {!restore} overwrites the accumulator in place
    with a {!save}d state, bit-exactly.
    @raise Ss_checkpoint.Corrupt on malformed data. *)

(** Streaming variance–time Hurst estimation.

    The online form of {!Ss_fractal.Hurst.variance_time}: level [j]
    aggregates the input into blocks of [m = 2^j] consecutive samples
    and accumulates the completed block means in a Welford
    accumulator, so [var] of the level-[j] means tracks
    [sigma2 * m^(2H-2)] for an FGN-like input. {!estimate} fits
    [log10 var] against [log10 m] by OLS and returns
    [H = 1 + slope/2]. O(levels) memory, O(levels) per observation —
    cheap enough to run per source inside the multiplexer's policing
    loop. *)
module Vt : sig
  type t

  val create : ?levels:int -> unit -> t
  (** [levels] (default 7) dyadic aggregation levels
      [m = 1, 2, ..., 2^(levels-1)].
      @raise Invalid_argument if [levels < 3] or [levels > 30]. *)

  val add : t -> float -> unit
  (** Feed one observation. *)

  val count : t -> int
  (** Observations fed so far. *)

  val estimate : t -> float option
  (** Current H estimate, or [None] until at least three levels have
      four completed blocks each with positive variance (so roughly
      [32 * 4] observations for the default levels). The estimate is
      unclamped: values outside (0,1) can occur on pathological input
      and are the caller's signal of a non-FGN stream. *)

  val save : t -> Ss_checkpoint.W.t -> unit
  val restore : t -> Ss_checkpoint.R.t -> unit
  (** Checkpoint codec; {!restore} requires an estimator created with
      the same [levels] and overwrites it in place.
      @raise Ss_checkpoint.Corrupt on level-structure mismatch. *)
end

(** P² dynamic quantile estimation without stored samples.

    Five markers track the running min, the p/2, p and (1+p)/2
    quantiles and the max; marker heights are adjusted with a
    piecewise-parabolic (hence "P squared") interpolation each time
    the desired marker positions drift. The estimate converges to the
    true quantile for i.i.d. input; accuracy on dependent input is
    what the [test_mux] property tests quantify. *)
module P2 : sig
  type t

  val create : p:float -> t
  (** Track the [p]-quantile. @raise Invalid_argument if [p] outside
      (0,1). *)

  val p : t -> float
  (** The tracked probability level. *)

  val add : t -> float -> unit
  (** Feed one observation. *)

  val count : t -> int

  val quantile : t -> float
  (** Current estimate. With five or fewer observations this is the
      exact (type-7 interpolated) empirical quantile, clamped to the
      order statistics themselves at integral ranks — never NaN for
      non-NaN input, even when the sample prefix contains
      infinities.
      @raise Invalid_argument on an empty estimator. *)

  val save : t -> Ss_checkpoint.W.t -> unit
  val restore : t -> Ss_checkpoint.R.t -> unit
  (** Checkpoint codec; {!restore} requires an estimator created with
      the bitwise-same [p] and overwrites it in place.
      @raise Ss_checkpoint.Corrupt on mismatch. *)
end

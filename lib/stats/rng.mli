(** Deterministic, splittable pseudo-random number generator.

    The generator is xoshiro256++ (Blackman & Vigna, 2019) seeded
    through splitmix64, hand-rolled so that every experiment in this
    repository is reproducible from a single integer seed and
    independent substreams can be split off for parallel or
    per-replication use.

    All stochastic entry points in the library take an explicit
    [Rng.t]; there is no hidden global state. *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] builds a generator from a 63-bit seed. Equal seeds
    give equal streams. *)

val of_state : int64 array -> t
(** [of_state s] builds a generator from a raw 4-word state (copied).
    @raise Invalid_argument if [Array.length s <> 4] or the state is
    all zero. *)

val copy : t -> t
(** Independent copy: advancing one does not affect the other. *)

val copy_into : src:t -> dst:t -> unit
(** Overwrite [dst]'s state with [src]'s. The checkpoint layer uses
    this to rewind a generator that is captured by closure. *)

val split : t -> t
(** [split t] deterministically derives a fresh generator whose
    stream is (statistically) independent of the continuation of
    [t]'s stream, and advances [t]. Used to give each simulation
    replication its own substream. *)

val split_n : t -> int -> t array
(** [split_n t n] is [n] successive {!split}s of [t] in index order:
    element [i] is the [i]-th child stream. Advancing the parent this
    way on one domain before fanning work out is what makes parallel
    replication estimates independent of the domain count.
    @raise Invalid_argument if [n < 0]. *)

val bits64 : t -> int64
(** Next raw 64-bit output word. *)

val float : t -> float
(** Uniform float in [\[0, 1)] with 53 random bits. *)

val float_range : t -> float -> float -> float
(** [float_range t a b] is uniform in [\[a, b)].
    @raise Invalid_argument if [b <= a]. *)

val int_range : t -> int -> int -> int
(** [int_range t lo hi] is uniform on the inclusive range
    [\[lo, hi\]]. @raise Invalid_argument if [hi < lo]. *)

val bool : t -> bool
(** Fair coin. *)

val gaussian : t -> float
(** Standard normal deviate (Marsaglia polar method; exact in
    distribution, not table-driven). *)

val fill_gaussian : t -> float array -> off:int -> len:int -> unit
(** [fill_gaussian t buf ~off ~len] writes [len] standard normal
    deviates into [buf.(off .. off+len-1)] — the exact sequence (and
    final generator state, including the cached polar deviate) of
    [len] successive {!gaussian} calls, without a boxed float return
    per deviate. The block generation kernels batch their innovations
    through this.
    @raise Invalid_argument if the range falls outside [buf]. *)

val save : t -> Ss_checkpoint.W.t -> unit
(** Serialize the full state, including the cached polar deviate, so
    a restored stream continues bit-for-bit. *)

val restore : t -> Ss_checkpoint.R.t -> unit
(** Overwrite [t]'s state in place from a {!save}d snapshot. In-place
    because generators are captured by closure throughout the library.
    @raise Ss_checkpoint.Corrupt on malformed or all-zero state. *)

val gaussian_mv : t -> mean:float -> std:float -> float
(** Normal deviate with given mean and standard deviation.
    @raise Invalid_argument if [std < 0]. *)

val exponential : t -> rate:float -> float
(** Exponential deviate with rate [rate] (mean [1/rate]).
    @raise Invalid_argument if [rate <= 0]. *)

val pareto : t -> shape:float -> scale:float -> float
(** Pareto (type I) deviate: support [\[scale, infinity)], tail
    [P(X>x) = (scale/x)^shape].
    @raise Invalid_argument if [shape <= 0 || scale <= 0]. *)

(* Minimal JSON emission/validation helpers for the BENCH_* artifacts.

   The bench writers assemble JSON by Printf; the one classical trap
   is that OCaml's %g/%f print non-finite floats as "nan"/"inf",
   which no strict JSON parser accepts — and several recorded cells
   are legitimately undefined (a relative half-width when zero MC
   hits were recorded, a ratio over an empty denominator). [float_str]
   is the single choke point: finite values format as before,
   non-finite ones become JSON null. [validate] is a strict RFC 8259
   checker (no NaN/Infinity tokens, no trailing commas) used by the
   test suite and the CI artifact gate. *)

let float_str ?decimals v =
  if Float.is_finite v then
    match decimals with
    | Some d -> Printf.sprintf "%.*f" d v
    | None -> Printf.sprintf "%.6g" v
  else "null"

(* --- strict validator: a tiny recursive-descent RFC 8259 parser --- *)

exception Bad of int * string

let validate s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let fail msg = raise (Bad (!pos, msg)) in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then pos := !pos + l
    else fail (Printf.sprintf "expected %s" word)
  in
  let is_digit c = c >= '0' && c <= '9' in
  let digits () =
    let start = !pos in
    while (match peek () with Some c when is_digit c -> true | _ -> false) do
      advance ()
    done;
    if !pos = start then fail "expected digit"
  in
  let number () =
    (match peek () with Some '-' -> advance () | _ -> ());
    (match peek () with
    | Some '0' -> advance ()
    | Some c when is_digit c -> digits ()
    | _ -> fail "expected digit");
    (match peek () with
    | Some '.' ->
      advance ();
      digits ()
    | _ -> ());
    match peek () with
    | Some ('e' | 'E') ->
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      digits ()
    | _ -> ()
  in
  let string_lit () =
    expect '"';
    let closed = ref false in
    while not !closed do
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' ->
        advance ();
        closed := true
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') -> advance ()
        | Some 'u' ->
          advance ();
          for _ = 1 to 4 do
            match peek () with
            | Some c when is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F') ->
              advance ()
            | _ -> fail "bad \\u escape"
          done
        | _ -> fail "bad escape")
      | Some c when Char.code c < 0x20 -> fail "control character in string"
      | Some _ -> advance ()
    done
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' -> obj ()
    | Some '[' -> arr ()
    | Some '"' -> string_lit ()
    | Some 't' -> literal "true"
    | Some 'f' -> literal "false"
    | Some 'n' -> literal "null"
    | Some ('-' | '0' .. '9') -> number ()
    | _ -> fail "expected a JSON value"
  and obj () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then advance ()
    else begin
      let continue = ref true in
      while !continue do
        skip_ws ();
        string_lit ();
        skip_ws ();
        expect ':';
        value ();
        skip_ws ();
        match peek () with
        | Some ',' -> advance ()
        | Some '}' ->
          advance ();
          continue := false
        | _ -> fail "expected ',' or '}'"
      done
    end
  and arr () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then advance ()
    else begin
      let continue = ref true in
      while !continue do
        value ();
        skip_ws ();
        match peek () with
        | Some ',' -> advance ()
        | Some ']' ->
          advance ();
          continue := false
        | _ -> fail "expected ',' or ']'"
      done
    end
  in
  try
    value ();
    skip_ws ();
    if !pos <> n then Error (Printf.sprintf "trailing garbage at offset %d" !pos)
    else Ok ()
  with Bad (at, msg) -> Error (Printf.sprintf "%s at offset %d" msg at)

let validate_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let content = really_input_string ic len in
  close_in ic;
  validate content

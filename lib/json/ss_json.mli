(** JSON emission and validation helpers for the machine-readable
    BENCH_* artifacts.

    OCaml's [%g]/[%f] render non-finite floats as bare [nan]/[inf]
    tokens, which strict JSON parsers reject — and bench cells are
    legitimately non-finite now and then (a relative half-width over
    zero recorded hits, a ratio with an empty denominator). All bench
    float cells route through {!float_str}, and {!validate} gives the
    tests and CI a strict acceptance check on the written files. *)

val float_str : ?decimals:int -> float -> string
(** Format a float as a JSON number token: [%.6g] by default,
    [%.*f] when [decimals] is given — or the literal [null] when the
    value is not finite (nan, +-infinity). *)

val validate : string -> (unit, string) result
(** Strict RFC 8259 check of a complete JSON document: rejects
    [nan]/[inf]/[Infinity] tokens, trailing commas, unquoted keys,
    trailing garbage. [Error msg] carries the offset of the first
    violation. *)

val validate_file : string -> (unit, string) result
(** {!validate} over a file's contents. *)

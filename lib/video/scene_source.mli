(** Synthetic MPEG-1 VBR rate simulator — the stand-in for the
    paper's proprietary "Last Action Hero" trace.

    The construction is the classical heavy-tailed scene model:

    - the movie is a renewal sequence of {e scenes} whose lengths are
      Pareto with tail index [alpha = 3 - 2H]; heavy-tailed renewal
      theory then gives the byte-rate process an autocorrelation tail
      [~ k^{-(alpha-1)} = k^{-(2-2H)}], i.e. exact asymptotic
      self-similarity with the target Hurst parameter;
    - each scene carries a Gamma-distributed {e activity level}
      (long-tailed marginal, as empirical VBR video shows);
    - within a scene, frame-to-frame fluctuation is a lognormal AR(1)
      modulation — the short-range-dependent "fast" component that
      gives the empirical ACF its knee;
    - each frame's size is the activity level times a per-type (I/P/B)
      compression factor times the fluctuation, so the stream has the
      strict 12-frame GOP periodicity visible in the paper's ACF
      plots.

    All code paths the real trace would exercise (marginal
    estimation, ACF knee fitting, Hurst estimation, per-type
    histograms, queueing) see statistically equivalent input. *)

type config = {
  frames : int;  (** trace length in frames *)
  gop : Gop.t;
  fps : float;
  hurst : float;  (** target H in (0.5, 1) — sets the Pareto tail *)
  mean_scene_frames : float;  (** average scene length *)
  mean_i_bytes : float;  (** mean I-frame size, bytes *)
  p_factor : float;  (** mean P size relative to I (0,1] *)
  b_factor : float;  (** mean B size relative to I (0,1] *)
  activity_shape : float;  (** Gamma shape of scene activity *)
  ar_coeff : float;  (** within-scene AR(1) coefficient in [0,1) *)
  ar_sigma : float;  (** std of the AR(1) log-modulation *)
}

val default : config
(** Calibrated to the paper's trace: 30 fps, GOP [IBBPBBPBBPBB],
    H = 0.9, mean scene ~ 4 s, mean I frame ~ 9000 bytes, P ~ 0.45 I,
    B ~ 0.25 I. [frames] defaults to 131072 (≈ 73 min). *)

val validate : config -> unit
(** @raise Invalid_argument explaining the first violated
    constraint. *)

val ladder : levels:float list -> config -> config list
(** [ladder ~levels c] is the bitrate ladder of [c]: one config per
    level, with [mean_i_bytes] scaled by that level and everything
    else untouched. Because the frame-size process is multiplicative
    in [mean_i_bytes] — scene lengths, activity levels and the AR(1)
    modulation are all independent of it — each rung's marginal is
    the base marginal rescaled (mean by the level, variance by its
    square) while the autocorrelation structure and Hurst parameter
    are preserved; generating two rungs from equal-seed generators
    yields pointwise-proportional traces up to the integer rounding
    and the 64-byte header floor. This is how the ABR layer
    ({!Ss_abr.Ladder}) builds the renditions a streaming client
    adapts across.
    @raise Invalid_argument if [c] is invalid, [levels] is empty, not
    strictly ascending, or contains a non-positive or non-finite
    level. *)

val generate : config -> Ss_stats.Rng.t -> Trace.t
(** Sample a synthetic trace. Deterministic given the RNG state. *)

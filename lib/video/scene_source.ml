module Rng = Ss_stats.Rng

type config = {
  frames : int;
  gop : Gop.t;
  fps : float;
  hurst : float;
  mean_scene_frames : float;
  mean_i_bytes : float;
  p_factor : float;
  b_factor : float;
  activity_shape : float;
  ar_coeff : float;
  ar_sigma : float;
}

let default =
  {
    frames = 131_072;
    gop = Gop.default;
    fps = 30.0;
    hurst = 0.9;
    mean_scene_frames = 120.0;
    mean_i_bytes = 9_000.0;
    p_factor = 0.45;
    b_factor = 0.25;
    activity_shape = 3.0;
    ar_coeff = 0.95;
    ar_sigma = 0.25;
  }

let validate c =
  let req cond msg = if not cond then invalid_arg ("Scene_source: " ^ msg) in
  req (c.frames > 0) "frames <= 0";
  req (c.fps > 0.0) "fps <= 0";
  req (c.hurst > 0.5 && c.hurst < 1.0) "hurst outside (0.5,1)";
  req (c.mean_scene_frames > 1.0) "mean_scene_frames <= 1";
  req (c.mean_i_bytes > 0.0) "mean_i_bytes <= 0";
  req (c.p_factor > 0.0 && c.p_factor <= 1.0) "p_factor outside (0,1]";
  req (c.b_factor > 0.0 && c.b_factor <= 1.0) "b_factor outside (0,1]";
  req (c.activity_shape > 0.0) "activity_shape <= 0";
  req (c.ar_coeff >= 0.0 && c.ar_coeff < 1.0) "ar_coeff outside [0,1)";
  req (c.ar_sigma >= 0.0) "ar_sigma < 0"

let ladder ~levels c =
  validate c;
  if levels = [] then invalid_arg "Scene_source.ladder: no levels";
  let rec ascending = function
    | a :: (b :: _ as rest) ->
      if b <= a then invalid_arg "Scene_source.ladder: levels not strictly ascending"
      else ascending rest
    | _ -> ()
  in
  List.iter
    (fun l ->
      if not (l > 0.0 && l < infinity) then
        invalid_arg "Scene_source.ladder: level must be positive and finite")
    levels;
  ascending levels;
  List.map (fun l -> { c with mean_i_bytes = c.mean_i_bytes *. l }) levels

let kind_factor c = function
  | Frame.I -> 1.0
  | Frame.P -> c.p_factor
  | Frame.B -> c.b_factor

let generate c rng =
  validate c;
  (* Pareto tail index producing the target Hurst parameter via
     H = (3 - alpha)/2; scale set so the mean length matches. *)
  let alpha = 3.0 -. (2.0 *. c.hurst) in
  let scene_scale = c.mean_scene_frames *. (alpha -. 1.0) /. alpha in
  let activity =
    (* Gamma with unit mean; the absolute level comes from mean_i_bytes. *)
    Ss_stats.Dist.gamma ~shape:c.activity_shape ~scale:(1.0 /. c.activity_shape)
  in
  (* Lognormal AR(1) modulation with unit mean:
     g_t = rho g_{t-1} + sigma sqrt(1-rho^2) Z; modulation =
     exp(g_t - sigma^2/2) where g is stationary N(0, sigma^2). *)
  let rho = c.ar_coeff in
  let innov_std = c.ar_sigma *. sqrt (1.0 -. (rho *. rho)) in
  let half_var = c.ar_sigma *. c.ar_sigma /. 2.0 in
  let sizes = Array.make c.frames 0.0 in
  let g = ref (Rng.gaussian rng *. c.ar_sigma) in
  let frames_left = ref 0 in
  let level = ref 1.0 in
  for t = 0 to c.frames - 1 do
    if !frames_left <= 0 then begin
      (* New scene: heavy-tailed length, fresh activity level. *)
      let len = Rng.pareto rng ~shape:alpha ~scale:scene_scale in
      frames_left := Stdlib.max 1 (int_of_float (Float.round len));
      level := activity.Ss_stats.Dist.sample rng
    end;
    decr frames_left;
    g := (rho *. !g) +. (innov_std *. Rng.gaussian rng);
    let modulation = exp (!g -. half_var) in
    let base = c.mean_i_bytes *. !level *. modulation in
    let size = base *. kind_factor c (Gop.kind_at c.gop t) in
    (* Frame sizes are integer byte counts with a small floor: even an
       empty MPEG frame carries headers. *)
    sizes.(t) <- Float.round (Stdlib.max 64.0 size)
  done;
  Trace.make ~name:"synthetic-movie" ~fps:c.fps ~gop:c.gop sizes

module Rng = Ss_stats.Rng
module Mc = Ss_queueing.Mc

type point = {
  twist : float;
  estimate : Mc.estimate;
}

(* Estimator-agnostic cores: the [eval] callback maps a candidate
   twist and a substream to an estimate. The single-queue wrappers
   below close [eval] over an Is_estimator config; Ss_mux.Mux_is
   reuses the same cores for the multiplexer estimator. *)

let sweep_by ~eval ~twists rng =
  if twists = [] then invalid_arg "Valley.sweep: no candidate twists";
  List.map
    (fun twist ->
      let sub = Rng.split rng in
      { twist; estimate = eval ~twist sub })
    twists

let best points =
  if points = [] then invalid_arg "Valley.best: empty input";
  let with_hits = List.filter (fun p -> p.estimate.Mc.hits > 0) points in
  let candidates = if with_hits = [] then points else with_hits in
  List.fold_left
    (fun acc p ->
      if p.estimate.Mc.normalized_variance < acc.estimate.Mc.normalized_variance then p
      else acc)
    (List.hd candidates) (List.tl candidates)

let refine_by ~eval ~lo ~hi ?(iterations = 12) rng =
  if hi <= lo then invalid_arg "Valley.refine: hi <= lo";
  if iterations < 1 then invalid_arg "Valley.refine: iterations < 1";
  let phi = (sqrt 5.0 -. 1.0) /. 2.0 in
  let objective twist =
    let p = { twist; estimate = eval ~twist (Rng.split rng) } in
    (p, p.estimate.Mc.normalized_variance)
  in
  let rec go a b (c, pc, fc) (d, pd, fd) n =
    if n = 0 then if fc < fd then pc else pd
    else if fc < fd then begin
      (* Minimum bracketed in [a, d]: d becomes the right edge, the
         old c becomes the new right interior point. *)
      let b' = d in
      let c' = b' -. (phi *. (b' -. a)) in
      let pc', fc' = objective c' in
      go a b' (c', pc', fc') (c, pc, fc) (n - 1)
    end
    else begin
      let a' = c in
      let d' = a' +. (phi *. (b -. a')) in
      let pd', fd' = objective d' in
      go a' b (d, pd, fd) (d', pd', fd') (n - 1)
    end
  in
  let c = hi -. (phi *. (hi -. lo)) in
  let d = lo +. (phi *. (hi -. lo)) in
  let pc, fc = objective c in
  let pd, fd = objective d in
  go lo hi (c, pc, fc) (d, pd, fd) iterations

let auto_by ~eval ?(lo = 0.25) ?(hi = 6.0) ?(coarse = 8) rng =
  if coarse < 2 then invalid_arg "Valley.auto: coarse < 2";
  let step = (hi -. lo) /. float_of_int (coarse - 1) in
  let twists = List.init coarse (fun i -> lo +. (step *. float_of_int i)) in
  let points = sweep_by ~eval ~twists rng in
  let coarse_best = best points in
  let bracket_lo = Stdlib.max lo (coarse_best.twist -. step) in
  let bracket_hi = Stdlib.min hi (coarse_best.twist +. step) in
  let refined = refine_by ~eval ~lo:bracket_lo ~hi:bracket_hi ~iterations:8 rng in
  if
    refined.estimate.Mc.hits > 0
    && refined.estimate.Mc.normalized_variance < coarse_best.estimate.Mc.normalized_variance
  then refined
  else coarse_best

(* Single-queue wrappers over Is_estimator, the original public API. *)

let eval_of ?pool ~config ~replications ~twist rng =
  Is_estimator.estimate ?pool (config ~twist) ~replications rng

let sweep ?pool ~config ~twists ~replications rng =
  sweep_by ~eval:(eval_of ?pool ~config ~replications) ~twists rng

let refine ?pool ~config ~lo ~hi ~replications ?iterations rng =
  refine_by ~eval:(eval_of ?pool ~config ~replications) ~lo ~hi ?iterations rng

let auto ?pool ~config ?lo ?hi ?coarse ~replications rng =
  auto_by ~eval:(eval_of ?pool ~config ~replications) ?lo ?hi ?coarse rng

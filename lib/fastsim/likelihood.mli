(** Likelihood ratio of a mean-twisted self-similar Gaussian
    background process (paper Appendix B, Eqs 35–48), generalized to
    time-varying twist profiles.

    The twisted process is [X'_k = X_k + m_k] for a deterministic
    profile [m] ({!Twist.t}; the paper's case is [m_k = m*]).
    Conditionally on the past, [X] and [X'] are Gaussian with the
    same Durbin–Levinson variance [v_k]; the conditional means differ
    by [delta_k = m_k - sum_j phi_{k,j} m_{k-j}]. Writing [eps_k] for
    the innovation actually drawn when generating the path under the
    twisted law, the per-step log likelihood ratio [log (f_X/f_X')]
    at the twisted sample collapses to

    [log L_k = -(2 eps_k delta_k + delta_k^2) / (2 v_k)]

    accumulated in log space (products of thousands of ratios
    underflow doubles long before they stop carrying information).
    For [k = 0] with a constant profile this is exactly the paper's
    Eq (48).

    [delta_k] depends only on the table and the profile, so it is
    precomputed once into a {!plan} and shared across the thousands
    of replications of an importance-sampling run (for the constant
    profile the row sums already cached in the table make this
    O(n)). *)

type plan
(** Precomputed per-step [delta_k] (and variances) for one
    (table, profile) pair. *)

val plan : table:Ss_fractal.Hosking.Table.t -> profile:Twist.t -> plan
(** O(n) for zero/constant profiles, O(n^2) once for general ones. *)

val plan_table : plan -> Ss_fractal.Hosking.Table.t

val plan_profile : plan -> Twist.t
(** The twist profile the plan was built for. *)

type t
(** Mutable per-replication accumulator. *)

val of_plan : plan -> t
(** A fresh accumulator (O(1)). *)

val create : table:Ss_fractal.Hosking.Table.t -> twist:float -> t
(** Convenience for the paper's constant twist:
    [of_plan (plan ~table ~profile:(Twist.constant twist))]. *)

val reset : t -> unit
(** Reuse the accumulator for a new replication. *)

val step : t -> k:int -> innovation:float -> unit
(** Record step [k]'s innovation [eps_k = x_k - E(X_k | past)] (the
    value actually added to the conditional mean when sampling).
    Steps must be fed in order 0, 1, 2, ... between resets;
    @raise Invalid_argument otherwise. *)

val log_ratio : t -> float
(** Accumulated [log L] up to the last step fed. *)

val ratio : t -> float
(** [exp (log_ratio t)] — may underflow to 0 for very unlikely
    paths; prefer {!log_ratio} in arithmetic. *)

val steps : t -> int
(** Number of steps fed since the last reset. *)

(** {2 Streaming accumulator}

    {!t} indexes the plan's delta table directly and therefore only
    supports horizons up to the table length. The streaming variant
    below follows the truncated-Hosking recursion used by
    [Ss_mux.Source.background_stream]: rows are exact up to
    [order = Table.length - 1], after which the AR(order) filter is
    frozen, so [delta_k] and [v_k] for [k >= order] come from the
    clamped row. Memory stays O(order) for any horizon. For constant
    profiles the tail delta is a single cached value; for general
    profiles a ring buffer of the last [order] shifts feeds one
    conditional-mean evaluation per step. For [k < Table.length] the
    streaming accumulator agrees exactly with {!t} on the same
    innovations. *)

type stream
(** Mutable per-replication streaming accumulator. *)

val stream_of_plan : plan -> stream
(** A fresh streaming accumulator (O(order)). *)

val stream : table:Ss_fractal.Hosking.Table.t -> profile:Twist.t -> stream

val stream_reset : stream -> unit

val stream_step : stream -> k:int -> innovation:float -> unit
(** Record step [k]'s innovation under the truncated recursion. Steps
    must be fed in order 0, 1, 2, ... between resets; any [k] is
    accepted (there is no table-length ceiling).
    @raise Invalid_argument on out-of-order steps. *)

val stream_log_ratio : stream -> float
(** Accumulated [log L] up to the last step fed. *)

val stream_steps : stream -> int

(** Heuristic search for a favorable twisting parameter (paper
    Fig 14).

    A closed-form optimal twist is intractable after the marginal
    transformation (Section 4), so the paper sweeps candidate twisted
    means and reads the "valley" of the estimator's normalized
    variance. This module runs that sweep and also offers a
    golden-section refinement around the sweep minimum. *)

type point = {
  twist : float;
  estimate : Ss_queueing.Mc.estimate;
}

(** {2 Estimator-agnostic cores}

    The search itself does not care which estimator it is tuning:
    [eval ~twist sub] must run the estimator at the candidate twist on
    the given substream. The [sweep]/[refine]/[auto] functions below
    close these over {!Is_estimator}; [Ss_mux.Mux_is] closes them over
    the multiplexer estimator. *)

val sweep_by :
  eval:(twist:float -> Ss_stats.Rng.t -> Ss_queueing.Mc.estimate) ->
  twists:float list ->
  Ss_stats.Rng.t ->
  point list

val refine_by :
  eval:(twist:float -> Ss_stats.Rng.t -> Ss_queueing.Mc.estimate) ->
  lo:float ->
  hi:float ->
  ?iterations:int ->
  Ss_stats.Rng.t ->
  point

val auto_by :
  eval:(twist:float -> Ss_stats.Rng.t -> Ss_queueing.Mc.estimate) ->
  ?lo:float ->
  ?hi:float ->
  ?coarse:int ->
  Ss_stats.Rng.t ->
  point

val sweep :
  ?pool:Ss_parallel.Pool.t ->
  config:(twist:float -> Is_estimator.config) ->
  twists:float list ->
  replications:int ->
  Ss_stats.Rng.t ->
  point list
(** Evaluate the normalized variance at each candidate twist. Each
    point uses an independent substream so the valley shape is not
    distorted by shared noise. [pool] parallelizes each point's
    replications without changing any result (see
    {!Is_estimator.estimate}). @raise Invalid_argument on an empty
    candidate list. *)

val best : point list -> point
(** The point with the smallest normalized variance among those with
    at least one hit; falls back to the overall smallest if no point
    has hits. @raise Invalid_argument on empty input. *)

val refine :
  ?pool:Ss_parallel.Pool.t ->
  config:(twist:float -> Is_estimator.config) ->
  lo:float ->
  hi:float ->
  replications:int ->
  ?iterations:int ->
  Ss_stats.Rng.t ->
  point
(** Golden-section minimization of the normalized variance over
    [\[lo, hi\]] (default 12 iterations). The objective is noisy, so
    this is a refinement heuristic, not an exact optimizer — the
    paper itself picks the twist by eye from the sweep. *)

val auto :
  ?pool:Ss_parallel.Pool.t ->
  config:(twist:float -> Is_estimator.config) ->
  ?lo:float ->
  ?hi:float ->
  ?coarse:int ->
  replications:int ->
  Ss_stats.Rng.t ->
  point
(** The statistical-optimization recipe of Devetsikiotis & Townsend
    (reference [5]) in one call: a coarse sweep of [coarse] (default
    8) twists across [\[lo, hi\]] (default [\[0.25, 6\]]), then a
    golden-section refinement bracketing the sweep minimum. *)

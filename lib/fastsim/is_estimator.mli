(** Importance-sampling estimation of buffer-overflow probabilities
    under self-similar VBR video traffic (paper Section 4 and
    Appendix B).

    Each replication generates the background Gaussian path under
    the twisted (mean-shifted) law step by step, transforms it to the
    foreground arrival process, accumulates the workload
    [W_i = sum (Y_j - mu)], and stops at the first passage above the
    buffer (the event of Eq 17) or at the horizon. Surviving
    replications contribute the likelihood ratio evaluated at the
    stopping time; the estimator [1/N sum I_n L_n] is unbiased for
    [Pr(sup_{i<=k} W_i > b)] — which equals the transient overflow
    probability [Pr(Q_k > b)] from an empty queue, the quantity the
    paper plots.

    Setting [twist = 0] recovers plain Monte Carlo exactly (all
    likelihood ratios are 1). *)

type arrival = int -> float -> float
(** Foreground map: [arrival i x] is the work arriving in slot [i]
    when the background value is [x] — typically
    [Transform.apply1 h] for a single marginal, or a GOP-indexed
    family of transforms for the composite MPEG model. *)

type backend = [ `Hosking | `Davies_harte of Ss_fractal.Davies_harte.plan ]
(** Background-path synthesis per replication. [`Hosking] (default)
    walks the Durbin–Levinson recursion step by step — required for
    any nonzero twist, since the likelihood ratio is accumulated from
    the per-step innovations. [`Davies_harte plan] draws the whole
    path exactly (every lag) by circulant embedding and runs plain
    Monte Carlo on it: only valid at zero twist, where all weights
    are 1; the plan must cover the horizon. *)

type config = {
  table : Ss_fractal.Hosking.Table.t;  (** background model, length >= horizon *)
  arrival : arrival;
  service : float;  (** deterministic service per slot, > 0 *)
  buffer : float;  (** overflow threshold b, >= 0 *)
  horizon : int;  (** k; must not exceed the table length *)
  twist : float;  (** background mean shift m* (0 = plain MC) *)
  profile : Twist.t;
      (** the actual per-slot shift; [Twist.constant twist] unless a
          profile was supplied explicitly *)
  lik_plan : Likelihood.plan;  (** precomputed likelihood deltas *)
  initial_workload : float;
      (** starting level of the workload supremum test; 0 for an
          initially empty buffer. The full-buffer variant of Fig 15
          additionally triggers on end-of-horizon workload (see
          [full_start]). *)
  full_start : bool;
      (** when true, model an initially full buffer: overflow also
          occurs if [q0 + W_k > b] at the horizon with [q0 = b]. *)
  backend : backend;  (** per-replication background synthesis *)
}

val make_config :
  table:Ss_fractal.Hosking.Table.t ->
  arrival:arrival ->
  service:float ->
  buffer:float ->
  horizon:int ->
  twist:float ->
  ?profile:Twist.t ->
  ?full_start:bool ->
  ?initial_workload:float ->
  ?backend:backend ->
  unit ->
  config
(** Validate and build. [full_start] defaults to false,
    [initial_workload] to 0, [backend] to [`Hosking]. When [profile]
    is given it overrides the constant [twist] (which then only
    serves as a label); otherwise the shift is [Twist.constant twist],
    the paper's scheme.
    @raise Invalid_argument on violated constraints (service <= 0,
    buffer < 0, horizon outside the table, a [`Davies_harte] backend
    with a nonzero twist or a plan shorter than the horizon, ...). *)

type replication = {
  hit : bool;  (** overflow occurred *)
  weight : float;
      (** [I * L]: likelihood ratio if hit, else 0. May underflow to 0
          for deep buffers; arithmetic should use [log_weight]. *)
  log_weight : float;  (** [log (I * L)]: [neg_infinity] unless hit *)
  stop_step : int;  (** 1-based step of first passage, or horizon *)
}

val replicate : config -> Ss_stats.Rng.t -> replication
(** Run one replication on the given substream. *)

val estimate :
  ?pool:Ss_parallel.Pool.t ->
  config ->
  replications:int ->
  Ss_stats.Rng.t ->
  Ss_queueing.Mc.estimate
(** Run [replications] independent replications (each on a split
    substream) and fold into the shared estimate record via
    {!Ss_queueing.Mc.estimate_of_log_samples} — weights are combined
    in the log domain, so the figure of merit survives likelihood
    ratios that underflow [exp]. [hits] counts overflowing
    replications; [normalized_variance] is the Fig-14 figure of
    merit. With [pool] the replications run across
    domains ({!Ss_parallel.Fanout}); substream assignment and fold
    order are fixed, so the estimate is bit-identical for any pool
    size, including the default sequential path.
    @raise Invalid_argument if [replications <= 0]. *)

val mean_stop_step :
  ?pool:Ss_parallel.Pool.t -> config -> replications:int -> Ss_stats.Rng.t -> float
(** Average first-passage step — a diagnostic of how aggressively a
    twist pushes paths across the buffer. Same parallel/determinism
    contract as {!estimate}. *)

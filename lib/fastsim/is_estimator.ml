module Rng = Ss_stats.Rng
module Table = Ss_fractal.Hosking.Table
module Mc = Ss_queueing.Mc

type arrival = int -> float -> float
type backend = [ `Hosking | `Davies_harte of Ss_fractal.Davies_harte.plan ]

type config = {
  table : Table.t;
  arrival : arrival;
  service : float;
  buffer : float;
  horizon : int;
  twist : float;
  profile : Twist.t;
  lik_plan : Likelihood.plan;
  initial_workload : float;
  full_start : bool;
  backend : backend;
}

let make_config ~table ~arrival ~service ~buffer ~horizon ~twist ?profile
    ?(full_start = false) ?(initial_workload = 0.0) ?(backend = `Hosking) () =
  if service <= 0.0 then invalid_arg "Is_estimator: service <= 0";
  if buffer < 0.0 then invalid_arg "Is_estimator: buffer < 0";
  if horizon <= 0 || horizon > Table.length table then
    invalid_arg "Is_estimator: horizon outside table length";
  if initial_workload < 0.0 then invalid_arg "Is_estimator: initial_workload < 0";
  let profile = match profile with Some p -> p | None -> Twist.constant twist in
  (match backend with
  | `Hosking -> ()
  | `Davies_harte plan ->
    (* Exact-synthesis backend: the whole background path is drawn
       under the untwisted law, so there are no per-step innovations
       to accumulate a likelihood from — it is plain Monte Carlo and
       only valid at zero twist. *)
    (match Twist.constant_value profile with
    | Some v when v = 0.0 -> ()
    | _ ->
      invalid_arg
        "Is_estimator: backend `Davies_harte is exact plain Monte Carlo and requires a zero \
         twist (no likelihood reweighting is possible without per-step innovations)");
    if Ss_fractal.Davies_harte.plan_length plan < horizon then
      invalid_arg "Is_estimator: Davies-Harte plan shorter than the horizon");
  let lik_plan = Likelihood.plan ~table ~profile in
  {
    table;
    arrival;
    service;
    buffer;
    horizon;
    twist;
    profile;
    lik_plan;
    initial_workload;
    full_start;
    backend;
  }

type replication = {
  hit : bool;
  weight : float;
  log_weight : float;
  stop_step : int;
}

(* Plain-MC replication on an exactly synthesized background path:
   first passage of the workload over the buffer, all weights 1
   (zero twist was enforced at config time). Unlike the Hosking walk
   this is exact at {e every} lag, not just up to the table order —
   the cross-backend agreement gate in the bench leans on that. *)
let replicate_davies_harte cfg plan rng =
  let xs = Array.make (Ss_fractal.Davies_harte.plan_length plan) 0.0 in
  Ss_fractal.Davies_harte.generate_into plan rng xs;
  let w = ref 0.0 in
  let result = ref None in
  let k = ref 0 in
  while !result = None && !k < cfg.horizon do
    let y = cfg.arrival !k xs.(!k) in
    w := !w +. y -. cfg.service;
    if cfg.initial_workload +. !w > cfg.buffer then
      result := Some { hit = true; weight = 1.0; log_weight = 0.0; stop_step = !k + 1 };
    incr k
  done;
  match !result with
  | Some r -> r
  | None ->
    if cfg.full_start && !w > 0.0 then
      { hit = true; weight = 1.0; log_weight = 0.0; stop_step = cfg.horizon }
    else { hit = false; weight = 0.0; log_weight = neg_infinity; stop_step = cfg.horizon }

let replicate_hosking cfg rng =
  let table = cfg.table in
  let lik = Likelihood.of_plan cfg.lik_plan in
  (* Background path under the twisted law, built incrementally:
     x'_k = (cond mean of untwisted past) + innovation + m_k.
     Storing the *untwisted* values keeps cond_mean applicable. *)
  let xs = Array.make cfg.horizon 0.0 in
  let w = ref 0.0 in
  let result = ref None in
  let k = ref 0 in
  while !result = None && !k < cfg.horizon do
    let m = Table.cond_mean table xs !k in
    let innovation = Table.innovation_std table !k *. Rng.gaussian rng in
    xs.(!k) <- m +. innovation;
    Likelihood.step lik ~k:!k ~innovation;
    let x_twisted = xs.(!k) +. Twist.shift cfg.profile !k in
    let y = cfg.arrival !k x_twisted in
    w := !w +. y -. cfg.service;
    if cfg.initial_workload +. !w > cfg.buffer then begin
      let lw = Likelihood.log_ratio lik in
      result := Some { hit = true; weight = exp lw; log_weight = lw; stop_step = !k + 1 }
    end;
    incr k
  done;
  match !result with
  | Some r -> r
  | None ->
    (* No first passage within the horizon. With a full initial
       buffer the queue is still above b at time k when q0 + W_k > b
       (q0 = b, i.e. W_k > 0). *)
    if cfg.full_start && !w > 0.0 then
      let lw = Likelihood.log_ratio lik in
      { hit = true; weight = exp lw; log_weight = lw; stop_step = cfg.horizon }
    else { hit = false; weight = 0.0; log_weight = neg_infinity; stop_step = cfg.horizon }

let replicate cfg rng =
  match cfg.backend with
  | `Hosking -> replicate_hosking cfg rng
  | `Davies_harte plan -> replicate_davies_harte cfg plan rng

let estimate ?pool cfg ~replications rng =
  if replications <= 0 then invalid_arg "Is_estimator.estimate: replications <= 0";
  let samples =
    Ss_parallel.Fanout.map ?pool ~rng ~n:replications (fun sub _ ->
        (replicate cfg sub).log_weight)
  in
  Mc.estimate_of_log_samples samples

let mean_stop_step ?pool cfg ~replications rng =
  if replications <= 0 then invalid_arg "Is_estimator.mean_stop_step: replications <= 0";
  let total =
    Ss_parallel.Fanout.fold ?pool ~rng ~n:replications ~f:( + ) ~init:0 (fun sub _ ->
        (replicate cfg sub).stop_step)
  in
  float_of_int total /. float_of_int replications

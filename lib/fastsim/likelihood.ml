module Table = Ss_fractal.Hosking.Table

type plan = {
  table : Table.t;
  profile : Twist.t;
  delta : float array;  (* delta_k = m_k - sum_j phi_{k,j} m_{k-j} *)
}

let plan ~table ~profile =
  let n = Table.length table in
  let delta =
    match Twist.constant_value profile with
    | Some m0 when m0 = 0.0 -> Array.make n 0.0
    | Some m0 -> Array.init n (fun k -> m0 *. (1.0 -. Table.row_sum table k))
    | None ->
      (* General profile: delta_k = m_k - sum_j phi_{k,j} m_{k-j},
         one conditional-mean pass over the profile itself. *)
      let m = Array.init n (Twist.shift profile) in
      Array.init n (fun k -> m.(k) -. Table.cond_mean table m k)
  in
  { table; profile; delta }

let plan_table p = p.table
let plan_profile p = p.profile

type t = {
  p : plan;
  mutable log_l : float;
  mutable next_k : int;
}

let of_plan p = { p; log_l = 0.0; next_k = 0 }

let create ~table ~twist = of_plan (plan ~table ~profile:(Twist.constant twist))

let reset t =
  t.log_l <- 0.0;
  t.next_k <- 0

let step t ~k ~innovation =
  if k <> t.next_k then
    invalid_arg (Printf.sprintf "Likelihood.step: expected step %d, got %d" t.next_k k);
  let delta = t.p.delta.(k) in
  if delta <> 0.0 then begin
    let v = Table.cond_var t.p.table k in
    t.log_l <- t.log_l -. (((2.0 *. innovation *. delta) +. (delta *. delta)) /. (2.0 *. v))
  end;
  t.next_k <- k + 1

let log_ratio t = t.log_l
let ratio t = exp t.log_l
let steps t = t.next_k

(* Streaming accumulator over the truncated-Hosking recursion: exact
   rows up to [order = Table.length - 1], then the frozen AR(order)
   filter, mirroring Source.background_stream. Memory is O(order)
   regardless of horizon. *)
type stream = {
  sp : plan;
  order : int;  (* Table.length sp.table - 1 *)
  mhist : float array;
      (* last [order] profile shifts, chronological; empty for
         constant profiles, whose tail delta is just sp.delta.(order) *)
  mutable s_log_l : float;
  mutable s_next_k : int;
}

let stream_of_plan sp =
  let order = Table.length sp.table - 1 in
  let mhist =
    match Twist.constant_value sp.profile with
    | Some _ -> [||]
    | None -> Array.make (Stdlib.max order 1) 0.0
  in
  { sp; order; mhist; s_log_l = 0.0; s_next_k = 0 }

let stream ~table ~profile = stream_of_plan (plan ~table ~profile)

let stream_reset t =
  t.s_log_l <- 0.0;
  t.s_next_k <- 0;
  Array.fill t.mhist 0 (Array.length t.mhist) 0.0

let stream_step t ~k ~innovation =
  if k <> t.s_next_k then
    invalid_arg (Printf.sprintf "Likelihood.stream_step: expected step %d, got %d" t.s_next_k k);
  let sp = t.sp in
  let kk = if k < t.order then k else t.order in
  let delta =
    if Array.length t.mhist = 0 then
      (* Constant profile: delta depends only on the (clamped) row. *)
      sp.delta.(kk)
    else begin
      let m_k = Twist.shift sp.profile k in
      let d =
        if k <= t.order then sp.delta.(k)
        else m_k -. Table.cond_mean sp.table t.mhist t.order
      in
      (if t.order > 0 then
         if k < t.order then t.mhist.(k) <- m_k
         else begin
           Array.blit t.mhist 1 t.mhist 0 (t.order - 1);
           t.mhist.(t.order - 1) <- m_k
         end);
      d
    end
  in
  (if delta <> 0.0 then
     let v = Table.cond_var sp.table kk in
     t.s_log_l <- t.s_log_l -. (((2.0 *. innovation *. delta) +. (delta *. delta)) /. (2.0 *. v)));
  t.s_next_k <- k + 1

let stream_log_ratio t = t.s_log_l
let stream_steps t = t.s_next_k

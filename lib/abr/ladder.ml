module Trace = Ss_video.Trace

type t = {
  levels : float array;
  chunk_frames : int;
  chunk_s : float;
  chunks : int;
  sizes : float array array;
  rates : float array;
}

let check_chunking ~chunk_frames ~frames ~fps =
  if chunk_frames <= 0 then invalid_arg "Ladder: chunk_frames <= 0";
  if frames < chunk_frames then invalid_arg "Ladder: trace shorter than one chunk";
  if not (fps > 0.0) then invalid_arg "Ladder: fps <= 0";
  (frames / chunk_frames, float_of_int chunk_frames /. fps)

let chunk_sizes ~chunk_frames ~chunks sizes =
  Array.init chunks (fun k ->
      let s = ref 0.0 in
      for j = k * chunk_frames to ((k + 1) * chunk_frames) - 1 do
        s := !s +. sizes.(j)
      done;
      !s)

let mean a = Array.fold_left ( +. ) 0.0 a /. float_of_int (Array.length a)

let of_trace ?(levels = [ 0.3; 0.55; 1.0; 1.8; 3.0 ]) ~chunk_frames trace =
  (* An ABR ladder with a single rung leaves the policies nothing to
     adapt across; reject it exactly as [of_traces] does. *)
  (match levels with
  | [] | [ _ ] -> invalid_arg "Ladder.of_trace: need at least two levels"
  | _ -> ());
  let rec ascending = function
    | a :: (b :: _ as rest) ->
      if b <= a then invalid_arg "Ladder.of_trace: levels not strictly ascending"
      else ascending rest
    | _ -> ()
  in
  List.iter
    (fun l ->
      if not (l > 0.0 && l < infinity) then
        invalid_arg "Ladder.of_trace: level must be positive and finite")
    levels;
  ascending levels;
  let chunks, chunk_s =
    check_chunking ~chunk_frames ~frames:(Trace.length trace) ~fps:trace.Trace.fps
  in
  let base = chunk_sizes ~chunk_frames ~chunks trace.Trace.sizes in
  let levels = Array.of_list levels in
  let sizes = Array.map (fun l -> Array.map (fun b -> l *. b) base) levels in
  {
    levels;
    chunk_frames;
    chunk_s;
    chunks;
    sizes;
    rates = Array.map (fun cs -> mean cs /. chunk_s) sizes;
  }

let of_traces ~chunk_frames traces =
  (match traces with
  | [] | [ _ ] -> invalid_arg "Ladder.of_traces: need at least two renditions"
  | t0 :: rest ->
    List.iter
      (fun tr ->
        if Trace.length tr <> Trace.length t0 then
          invalid_arg "Ladder.of_traces: renditions differ in length";
        if tr.Trace.fps <> t0.Trace.fps then
          invalid_arg "Ladder.of_traces: renditions differ in fps")
      rest);
  let t0 = List.hd traces in
  let chunks, chunk_s =
    check_chunking ~chunk_frames ~frames:(Trace.length t0) ~fps:t0.Trace.fps
  in
  let sizes =
    Array.of_list
      (List.map (fun tr -> chunk_sizes ~chunk_frames ~chunks tr.Trace.sizes) traces)
  in
  let rates = Array.map (fun cs -> mean cs /. chunk_s) sizes in
  Array.iteri
    (fun l r ->
      if l > 0 && r <= rates.(l - 1) then
        invalid_arg "Ladder.of_traces: rendition rates not strictly ascending")
    rates;
  let base = rates.(0) in
  {
    levels = Array.map (fun r -> r /. base) rates;
    chunk_frames;
    chunk_s;
    chunks;
    sizes;
    rates;
  }

let pp ppf t =
  Format.fprintf ppf "ladder: %d renditions, %d chunks of %.2f s (%d frames)@."
    (Array.length t.levels) t.chunks t.chunk_s t.chunk_frames;
  Array.iteri
    (fun l r ->
      Format.fprintf ppf "  level %d  x%-5.2f  %8.3f Mbps@." l t.levels.(l)
        (r *. 8.0 /. 1e6))
    t.rates

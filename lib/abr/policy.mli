(** Adaptation policies: per-chunk rendition selection.

    A policy sees one {!observation} before each chunk request and
    returns the ladder level to fetch (clamped by the client to the
    ladder's range). All policies are deterministic functions of the
    observation, so fleet runs stay bit-identical at any domain
    count. *)

type observation = {
  chunk_index : int;  (** 0-based chunk about to be requested *)
  buffer_s : float;  (** playback buffer, seconds of video *)
  last_level : int;  (** previous chunk's level, [-1] before the first *)
  throughput_Bps : float;
      (** harmonic-mean download throughput over the client's recent
          chunks, bytes/second; [0] before any download completed *)
  rates : float array;  (** the ladder's nominal rates, bytes/second *)
  max_buffer_s : float;  (** the client's buffer capacity *)
}

type t = { name : string; choose : observation -> int }

val make : name:string -> (observation -> int) -> t
(** Wrap a custom selection function. *)

val bba : ?reservoir_s:float -> ?cushion_s:float -> unit -> t
(** Buffer-based adaptation in the style of BBA-0 (Huang et al.,
    SIGCOMM 2014): below [reservoir_s] (default 5) of buffer pick the
    lowest rendition, above [reservoir_s + cushion_s] (default
    cushion 10) the highest, and in between map buffer occupancy
    linearly onto the rate axis. Ignores throughput entirely.
    @raise Invalid_argument on non-positive parameters. *)

val rate : ?safety:float -> unit -> t
(** Throughput-based adaptation: pick the highest rendition whose
    nominal rate fits under [safety] (default 0.85) times the
    harmonic-mean throughput estimate; the lowest until a first
    estimate exists. @raise Invalid_argument if [safety] outside
    (0,1]. *)

val fixed : int -> t
(** Always request the given level (clamped to the ladder) — for
    tests and floor/ceiling baselines.
    @raise Invalid_argument on a negative level. *)

(** Bitrate ladders: the renditions an adaptive-bitrate client picks
    among, as per-chunk byte counts per quality level.

    A chunk is [chunk_frames] consecutive frames of a VBR trace
    ([chunk_frames / fps] seconds of video); a rendition is the same
    content at a different encoding rate. Two constructions are
    supported: scaling one trace by explicit level factors
    ({!of_trace} — renditions are exactly proportional), and one
    trace per rendition ({!of_traces} — e.g. the equal-seed outputs
    of {!Ss_video.Scene_source.ladder}, whose rungs share scene
    structure but differ slightly in rounding, like real multi-rate
    encodes). *)

type t = {
  levels : float array;  (** scale factor of each rendition relative to the lowest *)
  chunk_frames : int;
  chunk_s : float;  (** chunk duration, seconds *)
  chunks : int;  (** chunks available (clients cycle past the end) *)
  sizes : float array array;  (** [sizes.(l).(k)]: bytes of chunk [k] at level [l] *)
  rates : float array;  (** nominal mean rate of each level, bytes/second *)
}

val of_trace : ?levels:float list -> chunk_frames:int -> Ss_video.Trace.t -> t
(** Scale one trace into a ladder. [levels] (default
    [0.3; 0.55; 1.0; 1.8; 3.0]) are the per-rendition factors,
    strictly ascending and positive; like {!of_traces}, at least two
    are required (a one-rung ladder leaves nothing to adapt across).
    @raise Invalid_argument on bad or fewer than two levels,
    [chunk_frames <= 0] or a trace shorter than one chunk. *)

val of_traces : chunk_frames:int -> Ss_video.Trace.t list -> t
(** One trace per rendition, lowest rate first. All traces must share
    length and fps, and their mean chunk rates must be strictly
    ascending. @raise Invalid_argument otherwise, or on fewer than
    two renditions. *)

val pp : Format.formatter -> t -> unit
(** Rendition table (level, factor, Mbps). *)

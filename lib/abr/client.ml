type config = {
  chunks : int;
  max_buffer_s : float;
  rtt_s : float;
  throughput_window : int;
  rebuffer_penalty : float;
  switch_penalty : float;
}

let default =
  {
    chunks = 120;
    max_buffer_s = 30.0;
    rtt_s = 0.08;
    throughput_window = 8;
    rebuffer_penalty = 4.3;
    switch_penalty = 1.0;
  }

type result = {
  policy : string;
  chunks : int;
  startup_s : float;
  rebuffer_s : float;
  rebuffer_ratio : float;
  rebuffer_events : int;
  mean_bitrate_mbps : float;
  mean_level : float;
  switches : int;
  qoe : float;
  qoe_bitrate : float;
  qoe_rebuffer : float;
  qoe_switch : float;
}

let validate (cfg : config) =
  if cfg.chunks <= 0 then invalid_arg "Client: chunks <= 0";
  if not (cfg.max_buffer_s > 0.0) then invalid_arg "Client: max_buffer_s <= 0";
  if not (cfg.rtt_s >= 0.0) then invalid_arg "Client: rtt_s < 0";
  if cfg.throughput_window <= 0 then invalid_arg "Client: throughput_window <= 0";
  if not (cfg.rebuffer_penalty >= 0.0) then invalid_arg "Client: rebuffer_penalty < 0";
  if not (cfg.switch_penalty >= 0.0) then invalid_arg "Client: switch_penalty < 0"

(* Walk the bandwidth trace from continuous position [pos] (in slot
   units) until [bytes] have been transferred, wrapping at the end of
   the trace. Returns the new position; elapsed slots = new - old.
   Mirrors the cooked-trace walk of the Pensieve/oboe simulators, with
   fractional slot-boundary handling. *)
let download bandwidth ~pos ~bytes =
  let len = Array.length bandwidth in
  let pos = ref pos and left = ref bytes in
  (* Guarded by the caller: total trace bandwidth is positive, so each
     full lap makes progress and this loop terminates. *)
  while !left > 0.0 do
    let slot = int_of_float (Float.floor !pos) mod len in
    let frac_left = 1.0 -. (!pos -. Float.floor !pos) in
    let cap = bandwidth.(slot) *. frac_left in
    if cap >= !left && cap > 0.0 then begin
      pos := !pos +. (!left /. bandwidth.(slot));
      left := 0.0
    end
    else begin
      left := !left -. cap;
      pos := Float.floor !pos +. 1.0
    end
  done;
  !pos

let run ?(config = default) ~policy ~ladder ~bandwidth ?delays ~slot_s ~start ()
    =
  validate config;
  if not (slot_s > 0.0) then invalid_arg "Client.run: slot_s <= 0";
  let len = Array.length bandwidth in
  if len = 0 then invalid_arg "Client.run: empty bandwidth trace";
  (match delays with
  | Some d when Array.length d <> len ->
    invalid_arg "Client.run: delays length mismatch"
  | _ -> ());
  if start < 0 || start >= len then invalid_arg "Client.run: start out of range";
  let total_bw = Array.fold_left ( +. ) 0.0 bandwidth in
  if not (total_bw > 0.0) then
    invalid_arg "Client.run: bandwidth trace sums to zero";
  let nlev = Array.length ladder.Ladder.rates in
  let chunk_s = ladder.Ladder.chunk_s in
  let pos = ref (float_of_int start) in
  let buffer = ref 0.0 in
  let startup = ref 0.0 in
  let rebuffer = ref 0.0 in
  let rebuffer_events = ref 0 in
  let switches = ref 0 in
  let last_level = ref (-1) in
  let sum_rate = ref 0.0 in
  let sum_level = ref 0.0 in
  let qoe_bitrate = ref 0.0 in
  let qoe_rebuffer = ref 0.0 in
  let qoe_switch = ref 0.0 in
  (* Harmonic-mean throughput over the last [throughput_window]
     completed chunk downloads. *)
  let tput_ring = Array.make config.throughput_window 0.0 in
  let tput_n = ref 0 in
  let throughput () =
    if !tput_n = 0 then 0.0
    else begin
      let m = min !tput_n config.throughput_window in
      let inv = ref 0.0 in
      for j = 0 to m - 1 do
        inv := !inv +. (1.0 /. tput_ring.(j))
      done;
      float_of_int m /. !inv
    end
  in
  for k = 0 to config.chunks - 1 do
    let obs =
      {
        Policy.chunk_index = k;
        buffer_s = !buffer;
        last_level = !last_level;
        throughput_Bps = throughput ();
        rates = ladder.Ladder.rates;
        max_buffer_s = config.max_buffer_s;
      }
    in
    let level = policy.Policy.choose obs in
    let level = if level < 0 then 0 else if level >= nlev then nlev - 1 else level in
    let bytes = ladder.Ladder.sizes.(level).(k mod ladder.Ladder.chunks) in
    (* Request latency: RTT plus the mux's virtual queueing delay at
       the slot the request goes out in. *)
    let req_slot = int_of_float !pos mod len in
    let qdelay_s =
      match delays with None -> 0.0 | Some d -> d.(req_slot) *. slot_s
    in
    let latency_s = config.rtt_s +. qdelay_s in
    pos := !pos +. (latency_s /. slot_s);
    let pos' = download bandwidth ~pos:!pos ~bytes in
    let dl_s = ((pos' -. !pos) *. slot_s) +. latency_s in
    pos := pos';
    if !tput_n < config.throughput_window then begin
      tput_ring.(!tput_n) <- bytes /. dl_s;
      incr tput_n
    end
    else begin
      (* Shift window: cheap for the small windows we use, and keeps
         ring order = arrival order for the harmonic mean. *)
      Array.blit tput_ring 1 tput_ring 0 (config.throughput_window - 1);
      tput_ring.(config.throughput_window - 1) <- bytes /. dl_s
    end;
    if k = 0 then begin
      startup := dl_s;
      buffer := chunk_s
    end
    else begin
      let stall = Float.max 0.0 (dl_s -. !buffer) in
      if stall > 0.0 then begin
        rebuffer := !rebuffer +. stall;
        incr rebuffer_events
      end;
      buffer := Float.max 0.0 (!buffer -. dl_s) +. chunk_s;
      if !buffer > config.max_buffer_s then begin
        (* Buffer full: the client idles (no request in flight) while
           playback drains the excess. *)
        let sleep_s = !buffer -. config.max_buffer_s in
        pos := !pos +. (sleep_s /. slot_s);
        buffer := config.max_buffer_s
      end
    end;
    let rate_mbps = ladder.Ladder.rates.(level) *. 8.0 /. 1e6 in
    sum_rate := !sum_rate +. rate_mbps;
    sum_level := !sum_level +. float_of_int level;
    qoe_bitrate := !qoe_bitrate +. rate_mbps;
    if k > 0 then begin
      let prev = ladder.Ladder.rates.(!last_level) *. 8.0 /. 1e6 in
      if level <> !last_level then incr switches;
      qoe_switch :=
        !qoe_switch +. (config.switch_penalty *. Float.abs (rate_mbps -. prev))
    end;
    last_level := level
  done;
  qoe_rebuffer := config.rebuffer_penalty *. !rebuffer;
  let n = float_of_int config.chunks in
  let watch_s = n *. chunk_s in
  {
    policy = policy.Policy.name;
    chunks = config.chunks;
    startup_s = !startup;
    rebuffer_s = !rebuffer;
    rebuffer_ratio = !rebuffer /. (watch_s +. !rebuffer +. !startup);
    rebuffer_events = !rebuffer_events;
    mean_bitrate_mbps = !sum_rate /. n;
    mean_level = !sum_level /. n;
    switches = !switches;
    qoe = (!qoe_bitrate -. !qoe_rebuffer -. !qoe_switch) /. n;
    qoe_bitrate = !qoe_bitrate /. n;
    qoe_rebuffer = !qoe_rebuffer /. n;
    qoe_switch = !qoe_switch /. n;
  }

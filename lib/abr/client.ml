type config = {
  chunks : int;
  max_buffer_s : float;
  rtt_s : float;
  throughput_window : int;
  rebuffer_penalty : float;
  switch_penalty : float;
}

let default =
  {
    chunks = 120;
    max_buffer_s = 30.0;
    rtt_s = 0.08;
    throughput_window = 8;
    rebuffer_penalty = 4.3;
    switch_penalty = 1.0;
  }

type result = {
  policy : string;
  chunks : int;
  startup_s : float;
  rebuffer_s : float;
  rebuffer_ratio : float;
  rebuffer_events : int;
  mean_bitrate_mbps : float;
  mean_level : float;
  switches : int;
  qoe : float;
  qoe_bitrate : float;
  qoe_rebuffer : float;
  qoe_switch : float;
}

let validate (cfg : config) =
  if cfg.chunks <= 0 then invalid_arg "Client: chunks <= 0";
  if not (cfg.max_buffer_s > 0.0) then invalid_arg "Client: max_buffer_s <= 0";
  if not (cfg.rtt_s >= 0.0) then invalid_arg "Client: rtt_s < 0";
  if cfg.throughput_window <= 0 then invalid_arg "Client: throughput_window <= 0";
  if not (cfg.rebuffer_penalty >= 0.0) then invalid_arg "Client: rebuffer_penalty < 0";
  if not (cfg.switch_penalty >= 0.0) then invalid_arg "Client: switch_penalty < 0"

(* Walk the bandwidth trace from continuous position [pos] (in slot
   units) until [bytes] have been transferred, wrapping at the end of
   the trace. Returns the new position; elapsed slots = new - old.
   Mirrors the cooked-trace walk of the Pensieve/oboe simulators, with
   fractional slot-boundary handling. *)
let download bandwidth ~pos ~bytes =
  let len = Array.length bandwidth in
  let pos = ref pos and left = ref bytes in
  (* Guarded by the caller: total trace bandwidth is positive, so each
     full lap makes progress and this loop terminates. *)
  while !left > 0.0 do
    let slot = int_of_float (Float.floor !pos) mod len in
    let frac_left = 1.0 -. (!pos -. Float.floor !pos) in
    let cap = bandwidth.(slot) *. frac_left in
    if cap >= !left && cap > 0.0 then begin
      pos := !pos +. (!left /. bandwidth.(slot));
      left := 0.0
    end
    else begin
      left := !left -. cap;
      pos := Float.floor !pos +. 1.0
    end
  done;
  !pos

(* All mutable playback state of one client, gathered in a record so a
   mid-stream snapshot is one save/restore over an explicit field
   list. [next_chunk] is the first chunk not yet streamed; everything
   else is the accumulator state after chunks [0 .. next_chunk - 1].
   The derived [qoe_rebuffer] term is computed from [rebuffer] at
   result time, not carried here. *)
type state = {
  mutable next_chunk : int;
  mutable pos : float;  (* continuous trace position, slot units *)
  mutable buffer : float;
  mutable startup : float;
  mutable rebuffer : float;
  mutable rebuffer_events : int;
  mutable switches : int;
  mutable last_level : int;
  mutable sum_rate : float;
  mutable sum_level : float;
  mutable qoe_bitrate : float;
  mutable qoe_switch : float;
  tput_ring : float array;
  mutable tput_n : int;
}

let make_state ?(config = default) ~start () =
  validate config;
  {
    next_chunk = 0;
    pos = float_of_int start;
    buffer = 0.0;
    startup = 0.0;
    rebuffer = 0.0;
    rebuffer_events = 0;
    switches = 0;
    last_level = -1;
    sum_rate = 0.0;
    sum_level = 0.0;
    qoe_bitrate = 0.0;
    qoe_switch = 0.0;
    tput_ring = Array.make config.throughput_window 0.0;
    tput_n = 0;
  }

module Ck = Ss_checkpoint

let save_state st w =
  Ck.W.tag w "abr-client";
  Ck.W.int w st.next_chunk;
  Ck.W.float w st.pos;
  Ck.W.float w st.buffer;
  Ck.W.float w st.startup;
  Ck.W.float w st.rebuffer;
  Ck.W.int w st.rebuffer_events;
  Ck.W.int w st.switches;
  Ck.W.int w st.last_level;
  Ck.W.float w st.sum_rate;
  Ck.W.float w st.sum_level;
  Ck.W.float w st.qoe_bitrate;
  Ck.W.float w st.qoe_switch;
  Ck.W.float_array w st.tput_ring;
  Ck.W.int w st.tput_n

let restore_state st r =
  Ck.R.tag r "abr-client";
  st.next_chunk <- Ck.R.int r;
  st.pos <- Ck.R.float r;
  st.buffer <- Ck.R.float r;
  st.startup <- Ck.R.float r;
  st.rebuffer <- Ck.R.float r;
  st.rebuffer_events <- Ck.R.int r;
  st.switches <- Ck.R.int r;
  st.last_level <- Ck.R.int r;
  st.sum_rate <- Ck.R.float r;
  st.sum_level <- Ck.R.float r;
  st.qoe_bitrate <- Ck.R.float r;
  st.qoe_switch <- Ck.R.float r;
  Ck.R.float_array_into r st.tput_ring;
  st.tput_n <- Ck.R.int r;
  if st.next_chunk < 0 then raise (Ck.Corrupt "abr-client: negative next_chunk");
  if st.tput_n < 0 || st.tput_n > Array.length st.tput_ring then
    raise (Ck.Corrupt "abr-client: throughput count outside the window")

let run ?(config = default) ~policy ~ladder ~bandwidth ?delays ~slot_s ~start
    ?state ?stop_after () =
  validate config;
  if not (slot_s > 0.0) then invalid_arg "Client.run: slot_s <= 0";
  let len = Array.length bandwidth in
  if len = 0 then invalid_arg "Client.run: empty bandwidth trace";
  (match delays with
  | Some d when Array.length d <> len ->
    invalid_arg "Client.run: delays length mismatch"
  | _ -> ());
  if start < 0 || start >= len then invalid_arg "Client.run: start out of range";
  let total_bw = Array.fold_left ( +. ) 0.0 bandwidth in
  if not (total_bw > 0.0) then
    invalid_arg "Client.run: bandwidth trace sums to zero";
  let nlev = Array.length ladder.Ladder.rates in
  let chunk_s = ladder.Ladder.chunk_s in
  let st =
    match state with
    | None -> make_state ~config ~start ()
    | Some s ->
      if Array.length s.tput_ring <> config.throughput_window then
        invalid_arg "Client.run: state throughput window mismatch";
      if s.next_chunk > config.chunks then
        invalid_arg "Client.run: state past the end of the stream";
      s
  in
  let stop =
    match stop_after with
    | None -> config.chunks
    | Some k ->
      if k < st.next_chunk || k > config.chunks then
        invalid_arg "Client.run: stop_after out of range";
      k
  in
  let throughput () =
    if st.tput_n = 0 then 0.0
    else begin
      let m = min st.tput_n config.throughput_window in
      let inv = ref 0.0 in
      for j = 0 to m - 1 do
        inv := !inv +. (1.0 /. st.tput_ring.(j))
      done;
      float_of_int m /. !inv
    end
  in
  for k = st.next_chunk to stop - 1 do
    let obs =
      {
        Policy.chunk_index = k;
        buffer_s = st.buffer;
        last_level = st.last_level;
        throughput_Bps = throughput ();
        rates = ladder.Ladder.rates;
        max_buffer_s = config.max_buffer_s;
      }
    in
    let level = policy.Policy.choose obs in
    let level = if level < 0 then 0 else if level >= nlev then nlev - 1 else level in
    let bytes = ladder.Ladder.sizes.(level).(k mod ladder.Ladder.chunks) in
    (* Request latency: RTT plus the mux's virtual queueing delay at
       the slot the request goes out in. *)
    let req_slot = int_of_float st.pos mod len in
    let qdelay_s =
      match delays with None -> 0.0 | Some d -> d.(req_slot) *. slot_s
    in
    let latency_s = config.rtt_s +. qdelay_s in
    st.pos <- st.pos +. (latency_s /. slot_s);
    let pos' = download bandwidth ~pos:st.pos ~bytes in
    let dl_s = ((pos' -. st.pos) *. slot_s) +. latency_s in
    st.pos <- pos';
    if st.tput_n < config.throughput_window then begin
      st.tput_ring.(st.tput_n) <- bytes /. dl_s;
      st.tput_n <- st.tput_n + 1
    end
    else begin
      (* Shift window: cheap for the small windows we use, and keeps
         ring order = arrival order for the harmonic mean. *)
      Array.blit st.tput_ring 1 st.tput_ring 0 (config.throughput_window - 1);
      st.tput_ring.(config.throughput_window - 1) <- bytes /. dl_s
    end;
    if k = 0 then begin
      st.startup <- dl_s;
      st.buffer <- chunk_s
    end
    else begin
      let stall = Float.max 0.0 (dl_s -. st.buffer) in
      if stall > 0.0 then begin
        st.rebuffer <- st.rebuffer +. stall;
        st.rebuffer_events <- st.rebuffer_events + 1
      end;
      st.buffer <- Float.max 0.0 (st.buffer -. dl_s) +. chunk_s;
      if st.buffer > config.max_buffer_s then begin
        (* Buffer full: the client idles (no request in flight) while
           playback drains the excess. *)
        let sleep_s = st.buffer -. config.max_buffer_s in
        st.pos <- st.pos +. (sleep_s /. slot_s);
        st.buffer <- config.max_buffer_s
      end
    end;
    let rate_mbps = ladder.Ladder.rates.(level) *. 8.0 /. 1e6 in
    st.sum_rate <- st.sum_rate +. rate_mbps;
    st.sum_level <- st.sum_level +. float_of_int level;
    st.qoe_bitrate <- st.qoe_bitrate +. rate_mbps;
    if k > 0 then begin
      let prev = ladder.Ladder.rates.(st.last_level) *. 8.0 /. 1e6 in
      if level <> st.last_level then st.switches <- st.switches + 1;
      st.qoe_switch <-
        st.qoe_switch +. (config.switch_penalty *. Float.abs (rate_mbps -. prev))
    end;
    st.last_level <- level;
    st.next_chunk <- k + 1
  done;
  let qoe_rebuffer = config.rebuffer_penalty *. st.rebuffer in
  let n = float_of_int config.chunks in
  let watch_s = n *. chunk_s in
  {
    policy = policy.Policy.name;
    chunks = config.chunks;
    startup_s = st.startup;
    rebuffer_s = st.rebuffer;
    rebuffer_ratio = st.rebuffer /. (watch_s +. st.rebuffer +. st.startup);
    rebuffer_events = st.rebuffer_events;
    mean_bitrate_mbps = st.sum_rate /. n;
    mean_level = st.sum_level /. n;
    switches = st.switches;
    qoe = (st.qoe_bitrate -. qoe_rebuffer -. st.qoe_switch) /. n;
    qoe_bitrate = st.qoe_bitrate /. n;
    qoe_rebuffer = qoe_rebuffer /. n;
    qoe_switch = st.qoe_switch /. n;
  }

let save_result (res : result) w =
  Ck.W.tag w "abr-result";
  Ck.W.string w res.policy;
  Ck.W.int w res.chunks;
  Ck.W.float w res.startup_s;
  Ck.W.float w res.rebuffer_s;
  Ck.W.float w res.rebuffer_ratio;
  Ck.W.int w res.rebuffer_events;
  Ck.W.float w res.mean_bitrate_mbps;
  Ck.W.float w res.mean_level;
  Ck.W.int w res.switches;
  Ck.W.float w res.qoe;
  Ck.W.float w res.qoe_bitrate;
  Ck.W.float w res.qoe_rebuffer;
  Ck.W.float w res.qoe_switch

let read_result r =
  Ck.R.tag r "abr-result";
  let policy = Ck.R.string r in
  let chunks = Ck.R.int r in
  let startup_s = Ck.R.float r in
  let rebuffer_s = Ck.R.float r in
  let rebuffer_ratio = Ck.R.float r in
  let rebuffer_events = Ck.R.int r in
  let mean_bitrate_mbps = Ck.R.float r in
  let mean_level = Ck.R.float r in
  let switches = Ck.R.int r in
  let qoe = Ck.R.float r in
  let qoe_bitrate = Ck.R.float r in
  let qoe_rebuffer = Ck.R.float r in
  let qoe_switch = Ck.R.float r in
  {
    policy;
    chunks;
    startup_s;
    rebuffer_s;
    rebuffer_ratio;
    rebuffer_events;
    mean_bitrate_mbps;
    mean_level;
    switches;
    qoe;
    qoe_bitrate;
    qoe_rebuffer;
    qoe_switch;
  }

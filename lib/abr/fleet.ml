module Rng = Ss_stats.Rng
module Fanout = Ss_parallel.Fanout

type summary = {
  mean : float;
  std : float;
  min : float;
  max : float;
  q10 : float;
  q50 : float;
  q90 : float;
}

type report = {
  clients : int;
  policy : string;
  chunks : int;
  qoe : summary;
  rebuffer_ratio : summary;
  bitrate_mbps : summary;
  startup_s : summary;
  rebuffer_s_total : float;
  zero_rebuffer_fraction : float;
  mean_level : float;
  mean_switches : float;
}

(* Exact (type-7) quantile of a sorted copy — fleets are small enough
   that sorting per metric is free next to the simulation itself. *)
let quantile_sorted a p =
  let n = Array.length a in
  if n = 1 then a.(0)
  else begin
    let h = p *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor h) in
    let hi = if lo + 1 > n - 1 then n - 1 else lo + 1 in
    let w = h -. float_of_int lo in
    if w <= 0.0 || hi = lo then a.(lo)
    else ((1.0 -. w) *. a.(lo)) +. (w *. a.(hi))
  end

let summarize values =
  let n = Array.length values in
  if n = 0 then invalid_arg "Fleet.summarize: empty";
  let nf = float_of_int n in
  let mean = Array.fold_left ( +. ) 0.0 values /. nf in
  let var =
    Array.fold_left (fun acc v -> acc +. ((v -. mean) *. (v -. mean))) 0.0 values
    /. nf
  in
  let sorted = Array.copy values in
  Array.sort compare sorted;
  {
    mean;
    std = sqrt var;
    min = sorted.(0);
    max = sorted.(n - 1);
    q10 = quantile_sorted sorted 0.1;
    q50 = quantile_sorted sorted 0.5;
    q90 = quantile_sorted sorted 0.9;
  }

let run ?pool ~rng ~clients ~policy ~ladder ~trajectory ?(config = Client.default)
    () =
  if clients <= 0 then invalid_arg "Fleet.run: clients <= 0";
  let nsrc = trajectory.Trajectory.sources in
  if trajectory.Trajectory.filled < trajectory.Trajectory.slots then
    invalid_arg "Fleet.run: trajectory not fully filled";
  let results =
    Fanout.map ?pool ~rng ~n:clients (fun sub j ->
        let src = j mod nsrc in
        let bandwidth = Trajectory.bandwidth trajectory src in
        let delays = Trajectory.delay trajectory src in
        let start = Rng.int_range sub 0 (Array.length bandwidth - 1) in
        Client.run ~config ~policy ~ladder ~bandwidth ~delays
          ~slot_s:trajectory.Trajectory.slot_s ~start ())
  in
  let metric f = Array.map f results in
  let nf = float_of_int clients in
  let report =
    {
      clients;
      policy = policy.Policy.name;
      chunks = config.Client.chunks;
      qoe = summarize (metric (fun r -> r.Client.qoe));
      rebuffer_ratio = summarize (metric (fun r -> r.Client.rebuffer_ratio));
      bitrate_mbps = summarize (metric (fun r -> r.Client.mean_bitrate_mbps));
      startup_s = summarize (metric (fun r -> r.Client.startup_s));
      rebuffer_s_total =
        Array.fold_left (fun acc r -> acc +. r.Client.rebuffer_s) 0.0 results;
      zero_rebuffer_fraction =
        float_of_int
          (Array.fold_left
             (fun acc r -> if r.Client.rebuffer_events = 0 then acc + 1 else acc)
             0 results)
        /. nf;
      mean_level =
        Array.fold_left (fun acc r -> acc +. r.Client.mean_level) 0.0 results
        /. nf;
      mean_switches =
        Array.fold_left
          (fun acc r -> acc +. float_of_int r.Client.switches)
          0.0 results
        /. nf;
    }
  in
  (report, results)

let pp_summary ppf s =
  Format.fprintf ppf "mean %.4g  sd %.4g  p10 %.4g  p50 %.4g  p90 %.4g" s.mean
    s.std s.q10 s.q50 s.q90

let pp_report ppf r =
  Format.fprintf ppf "fleet: %d clients, policy %s, %d chunks each@." r.clients
    r.policy r.chunks;
  Format.fprintf ppf "  qoe            %a@." pp_summary r.qoe;
  Format.fprintf ppf "  bitrate (Mbps) %a@." pp_summary r.bitrate_mbps;
  Format.fprintf ppf "  rebuffer ratio %a@." pp_summary r.rebuffer_ratio;
  Format.fprintf ppf "  startup (s)    %a@." pp_summary r.startup_s;
  Format.fprintf ppf
    "  total stall %.2f s  zero-stall clients %.1f%%  mean level %.2f  mean switches %.1f@."
    r.rebuffer_s_total
    (100.0 *. r.zero_rebuffer_fraction)
    r.mean_level r.mean_switches

module Rng = Ss_stats.Rng
module Fanout = Ss_parallel.Fanout

type summary = {
  mean : float;
  std : float;
  min : float;
  max : float;
  q10 : float;
  q50 : float;
  q90 : float;
}

type report = {
  clients : int;
  policy : string;
  chunks : int;
  qoe : summary;
  rebuffer_ratio : summary;
  bitrate_mbps : summary;
  startup_s : summary;
  rebuffer_s_total : float;
  zero_rebuffer_fraction : float;
  mean_level : float;
  mean_switches : float;
}

(* Exact (type-7) quantile of a sorted copy — fleets are small enough
   that sorting per metric is free next to the simulation itself. *)
let quantile_sorted a p =
  let n = Array.length a in
  if n = 1 then a.(0)
  else begin
    let h = p *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor h) in
    let hi = if lo + 1 > n - 1 then n - 1 else lo + 1 in
    let w = h -. float_of_int lo in
    if w <= 0.0 || hi = lo then a.(lo)
    else ((1.0 -. w) *. a.(lo)) +. (w *. a.(hi))
  end

let summarize values =
  let n = Array.length values in
  if n = 0 then invalid_arg "Fleet.summarize: empty";
  let nf = float_of_int n in
  let mean = Array.fold_left ( +. ) 0.0 values /. nf in
  let var =
    Array.fold_left (fun acc v -> acc +. ((v -. mean) *. (v -. mean))) 0.0 values
    /. nf
  in
  let sorted = Array.copy values in
  Array.sort compare sorted;
  {
    mean;
    std = sqrt var;
    min = sorted.(0);
    max = sorted.(n - 1);
    q10 = quantile_sorted sorted 0.1;
    q50 = quantile_sorted sorted 0.5;
    q90 = quantile_sorted sorted 0.9;
  }

module Ck = Ss_checkpoint

type checkpoint = {
  every : int;  (* clients between snapshots *)
  save : clients_done:int -> (Ck.W.t -> unit) -> unit;
}

let save_prefix ~policy_name ~clients ~clients_done results w =
  Ck.W.tag w "abr-fleet";
  Ck.W.string w policy_name;
  Ck.W.int w clients;
  Ck.W.int w clients_done;
  for j = 0 to clients_done - 1 do
    match results.(j) with
    | Some res -> Client.save_result res w
    | None -> assert false
  done

let restore_prefix ~policy_name ~clients results r =
  Ck.R.tag r "abr-fleet";
  let fail fmt = Printf.ksprintf (fun s -> raise (Ck.Corrupt ("fleet: " ^ s))) fmt in
  let saved_policy = Ck.R.string r in
  if saved_policy <> policy_name then
    fail "checkpoint ran policy %s, this run uses %s" saved_policy policy_name;
  let saved_clients = Ck.R.int r in
  if saved_clients <> clients then
    fail "checkpoint has %d clients, this run has %d" saved_clients clients;
  let clients_done = Ck.R.int r in
  if clients_done < 0 || clients_done > clients then
    fail "finished-client count %d outside [0, %d]" clients_done clients;
  for j = 0 to clients_done - 1 do
    results.(j) <- Some (Client.read_result r)
  done;
  clients_done

let run ?pool ~rng ~clients ~policy ~ladder ~trajectory ?(config = Client.default)
    ?checkpoint ?resume () =
  if clients <= 0 then invalid_arg "Fleet.run: clients <= 0";
  (match checkpoint with
  | Some ck when ck.every < 1 -> invalid_arg "Fleet.run: checkpoint interval < 1"
  | _ -> ());
  let nsrc = trajectory.Trajectory.sources in
  if trajectory.Trajectory.filled < trajectory.Trajectory.slots then
    invalid_arg "Fleet.run: trajectory not fully filled";
  let run_client sub j =
    let src = j mod nsrc in
    let bandwidth = Trajectory.bandwidth trajectory src in
    let delays = Trajectory.delay trajectory src in
    let start = Rng.int_range sub 0 (Array.length bandwidth - 1) in
    Client.run ~config ~policy ~ladder ~bandwidth ~delays
      ~slot_s:trajectory.Trajectory.slot_s ~start ()
  in
  let results =
    match (checkpoint, resume) with
    | None, None -> Fanout.map ?pool ~rng ~n:clients run_client
    | _ ->
      (* Checkpointing lane: {!Fanout.map} is [Rng.split_n] plus an
         indexed map, so this sequential loop over the same splits is
         bit-identical to the pooled fan-out — and a resumed run only
         replays the splits, never the finished clients. Snapshot
         granularity is one whole client (each client is
         self-contained); the saved prefix is the completed results in
         client order. *)
      let subs = Rng.split_n rng clients in
      let out : Client.result option array = Array.make clients None in
      let start_j =
        match resume with
        | None -> 0
        | Some r -> restore_prefix ~policy_name:policy.Policy.name ~clients out r
      in
      let last = ref start_j in
      for j = start_j to clients - 1 do
        out.(j) <- Some (run_client subs.(j) j);
        match checkpoint with
        | Some ck when j + 1 - !last >= ck.every && j + 1 < clients ->
          last := j + 1;
          ck.save ~clients_done:(j + 1)
            (save_prefix ~policy_name:policy.Policy.name ~clients ~clients_done:(j + 1)
               out)
        | _ -> ()
      done;
      Array.map
        (function Some res -> res | None -> assert false)
        out
  in
  let metric f = Array.map f results in
  let nf = float_of_int clients in
  let report =
    {
      clients;
      policy = policy.Policy.name;
      chunks = config.Client.chunks;
      qoe = summarize (metric (fun r -> r.Client.qoe));
      rebuffer_ratio = summarize (metric (fun r -> r.Client.rebuffer_ratio));
      bitrate_mbps = summarize (metric (fun r -> r.Client.mean_bitrate_mbps));
      startup_s = summarize (metric (fun r -> r.Client.startup_s));
      rebuffer_s_total =
        Array.fold_left (fun acc r -> acc +. r.Client.rebuffer_s) 0.0 results;
      zero_rebuffer_fraction =
        float_of_int
          (Array.fold_left
             (fun acc r -> if r.Client.rebuffer_events = 0 then acc + 1 else acc)
             0 results)
        /. nf;
      mean_level =
        Array.fold_left (fun acc r -> acc +. r.Client.mean_level) 0.0 results
        /. nf;
      mean_switches =
        Array.fold_left
          (fun acc r -> acc +. float_of_int r.Client.switches)
          0.0 results
        /. nf;
    }
  in
  (report, results)

let pp_summary ppf s =
  Format.fprintf ppf "mean %.4g  sd %.4g  p10 %.4g  p50 %.4g  p90 %.4g" s.mean
    s.std s.q10 s.q50 s.q90

let pp_report ppf r =
  Format.fprintf ppf "fleet: %d clients, policy %s, %d chunks each@." r.clients
    r.policy r.chunks;
  Format.fprintf ppf "  qoe            %a@." pp_summary r.qoe;
  Format.fprintf ppf "  bitrate (Mbps) %a@." pp_summary r.bitrate_mbps;
  Format.fprintf ppf "  rebuffer ratio %a@." pp_summary r.rebuffer_ratio;
  Format.fprintf ppf "  startup (s)    %a@." pp_summary r.startup_s;
  Format.fprintf ppf
    "  total stall %.2f s  zero-stall clients %.1f%%  mean level %.2f  mean switches %.1f@."
    r.rebuffer_s_total
    (100.0 *. r.zero_rebuffer_fraction)
    r.mean_level r.mean_switches

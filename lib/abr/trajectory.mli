(** Materialized per-source service/delay trajectories of a
    multiplexer run — the bridge between [Ss_mux.Mux.run]'s
    [?trajectory] hook and the ABR clients.

    The multiplexer reports, per slot and per source, the work served
    (bytes through the bottleneck — the source's achieved bandwidth
    in that slot) and the virtual queueing delay its arrivals faced.
    A capture transposes those per-slot callbacks into source-major
    rows so that each streaming client can walk one source's
    contiguous bandwidth process. *)

type t = {
  slots : int;
  sources : int;
  slot_s : float;  (** wall-clock seconds per multiplexer slot *)
  served : float array array;  (** [served.(i).(t)]: bytes served for source [i] in slot [t] *)
  delays : float array array;  (** [delays.(i).(t)]: virtual delay in slots *)
  mutable filled : int;  (** slots recorded so far *)
}

val create : slots:int -> sources:int -> slot_s:float -> t
(** Preallocate a capture for a [slots]-slot run of [sources]
    sources. @raise Invalid_argument on non-positive arguments. *)

val sink : t -> slot:int -> served:float array -> delays:float array -> unit
(** The sink to pass as [Ss_mux.Mux.run ~trajectory:(Trajectory.sink
    capture)]: copies the (reused) per-slot arrays into the capture.
    @raise Invalid_argument on a slot outside the capture or a
    source-count mismatch. *)

val bandwidth : t -> int -> float array
(** Source [i]'s bandwidth trace, bytes per slot (no copy).
    @raise Invalid_argument on an out-of-range source. *)

val delay : t -> int -> float array
(** Source [i]'s virtual-delay trace, in slots (no copy).
    @raise Invalid_argument on an out-of-range source. *)

val save : t -> Ss_checkpoint.W.t -> unit
val restore : t -> Ss_checkpoint.R.t -> unit
(** Checkpoint codec for a partially filled capture: the filled
    prefix of every source's served/delay rows. {!restore} requires a
    capture created with the same [slots]/[sources]/[slot_s] and
    overwrites it in place.
    @raise Ss_checkpoint.Corrupt on dimension mismatch. *)

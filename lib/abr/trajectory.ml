type t = {
  slots : int;
  sources : int;
  slot_s : float;
  served : float array array;
  delays : float array array;
  mutable filled : int;
}

let create ~slots ~sources ~slot_s =
  if slots <= 0 then invalid_arg "Trajectory.create: slots <= 0";
  if sources <= 0 then invalid_arg "Trajectory.create: sources <= 0";
  if not (slot_s > 0.0) then invalid_arg "Trajectory.create: slot_s <= 0";
  {
    slots;
    sources;
    slot_s;
    served = Array.init sources (fun _ -> Array.make slots 0.0);
    delays = Array.init sources (fun _ -> Array.make slots 0.0);
    filled = 0;
  }

let sink t ~slot ~served ~delays =
  if slot < 0 || slot >= t.slots then invalid_arg "Trajectory.sink: slot out of range";
  if Array.length served <> t.sources || Array.length delays <> t.sources then
    invalid_arg "Trajectory.sink: source count mismatch";
  (* Transpose into source-major rows: each client later walks one
     source's contiguous bandwidth trace. *)
  for i = 0 to t.sources - 1 do
    t.served.(i).(slot) <- served.(i);
    t.delays.(i).(slot) <- delays.(i)
  done;
  if slot >= t.filled then t.filled <- slot + 1

let bandwidth t i =
  if i < 0 || i >= t.sources then invalid_arg "Trajectory.bandwidth: source out of range";
  t.served.(i)

let delay t i =
  if i < 0 || i >= t.sources then invalid_arg "Trajectory.delay: source out of range";
  t.delays.(i)

module Ck = Ss_checkpoint

(* Only the filled prefix is serialized: rows past [filled] are still
   the zeros [create] wrote, and the restoring capture is freshly
   created, so they need no bytes. *)
let save t w =
  Ck.W.tag w "trajectory";
  Ck.W.int w t.slots;
  Ck.W.int w t.sources;
  Ck.W.float w t.slot_s;
  Ck.W.int w t.filled;
  for i = 0 to t.sources - 1 do
    for s = 0 to t.filled - 1 do
      Ck.W.float w t.served.(i).(s)
    done;
    for s = 0 to t.filled - 1 do
      Ck.W.float w t.delays.(i).(s)
    done
  done

let restore t r =
  Ck.R.tag r "trajectory";
  let fail fmt = Printf.ksprintf (fun s -> raise (Ck.Corrupt ("trajectory: " ^ s))) fmt in
  let check name saved live =
    if saved <> live then fail "checkpoint has %s %d, capture has %d" name saved live
  in
  check "slots" (Ck.R.int r) t.slots;
  check "sources" (Ck.R.int r) t.sources;
  let slot_s = Ck.R.float r in
  if Int64.bits_of_float slot_s <> Int64.bits_of_float t.slot_s then
    fail "checkpoint has slot_s %.17g, capture has %.17g" slot_s t.slot_s;
  let filled = Ck.R.int r in
  if filled < 0 || filled > t.slots then fail "filled %d outside [0, %d]" filled t.slots;
  for i = 0 to t.sources - 1 do
    for s = 0 to filled - 1 do
      t.served.(i).(s) <- Ck.R.float r
    done;
    for s = 0 to filled - 1 do
      t.delays.(i).(s) <- Ck.R.float r
    done
  done;
  t.filled <- filled

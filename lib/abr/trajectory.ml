type t = {
  slots : int;
  sources : int;
  slot_s : float;
  served : float array array;
  delays : float array array;
  mutable filled : int;
}

let create ~slots ~sources ~slot_s =
  if slots <= 0 then invalid_arg "Trajectory.create: slots <= 0";
  if sources <= 0 then invalid_arg "Trajectory.create: sources <= 0";
  if not (slot_s > 0.0) then invalid_arg "Trajectory.create: slot_s <= 0";
  {
    slots;
    sources;
    slot_s;
    served = Array.init sources (fun _ -> Array.make slots 0.0);
    delays = Array.init sources (fun _ -> Array.make slots 0.0);
    filled = 0;
  }

let sink t ~slot ~served ~delays =
  if slot < 0 || slot >= t.slots then invalid_arg "Trajectory.sink: slot out of range";
  if Array.length served <> t.sources || Array.length delays <> t.sources then
    invalid_arg "Trajectory.sink: source count mismatch";
  (* Transpose into source-major rows: each client later walks one
     source's contiguous bandwidth trace. *)
  for i = 0 to t.sources - 1 do
    t.served.(i).(slot) <- served.(i);
    t.delays.(i).(slot) <- delays.(i)
  done;
  if slot >= t.filled then t.filled <- slot + 1

let bandwidth t i =
  if i < 0 || i >= t.sources then invalid_arg "Trajectory.bandwidth: source out of range";
  t.served.(i)

let delay t i =
  if i < 0 || i >= t.sources then invalid_arg "Trajectory.delay: source out of range";
  t.delays.(i)

(** One adaptive-bitrate streaming client: a trace-driven download
    loop against a bandwidth/delay trajectory, with playback-buffer
    dynamics, rebuffer accounting and a QoE score.

    The simulation follows the chunk-level model used by the
    Pensieve/oboe line of work: for each chunk the policy picks a
    rendition, the chunk downloads over the (wrapping) bandwidth
    trace from the client's current time position, and the playback
    buffer drains in real time while the download is in flight. The
    bandwidth trace is typically a per-source served-work row of
    {!Trajectory} — so the multiplexer's LRD queueing dynamics become
    the client's throughput process. *)

type config = {
  chunks : int;  (** chunks to stream (client loops past ladder end) *)
  max_buffer_s : float;  (** buffer cap; the client idles when full *)
  rtt_s : float;  (** fixed per-request latency, seconds *)
  throughput_window : int;  (** chunks in the harmonic-mean estimate *)
  rebuffer_penalty : float;  (** QoE Mbps-equivalent per stall second *)
  switch_penalty : float;  (** QoE multiplier on |rate - prev rate| *)
}

val default : config
(** 120 chunks, 30 s buffer, 80 ms RTT, window 8, penalties 4.3 / 1.0
    (the MPC/Pensieve QoE constants). *)

type result = {
  policy : string;
  chunks : int;
  startup_s : float;  (** first-chunk download time *)
  rebuffer_s : float;  (** total stall time after startup *)
  rebuffer_ratio : float;  (** stall / (watch + stall + startup) *)
  rebuffer_events : int;
  mean_bitrate_mbps : float;
  mean_level : float;
  switches : int;  (** rendition changes between consecutive chunks *)
  qoe : float;  (** per-chunk: bitrate - rebuffer - switch terms *)
  qoe_bitrate : float;
  qoe_rebuffer : float;
  qoe_switch : float;
}

type state
(** All mutable playback state of one client (trace position, buffer,
    accumulators, throughput window) — a snapshot point between
    chunks. *)

val make_state : ?config:config -> start:int -> unit -> state
(** Fresh state for a client joining at slot [start].
    @raise Invalid_argument on an invalid config. *)

val save_state : state -> Ss_checkpoint.W.t -> unit
val restore_state : state -> Ss_checkpoint.R.t -> unit
(** Checkpoint codec for a mid-stream client. {!restore_state}
    overwrites a state built with the same config in place; resuming
    {!run} with it continues bitwise where the snapshot stopped.
    @raise Ss_checkpoint.Corrupt on structure mismatch. *)

val run :
  ?config:config ->
  policy:Policy.t ->
  ladder:Ladder.t ->
  bandwidth:float array ->
  ?delays:float array ->
  slot_s:float ->
  start:int ->
  ?state:state ->
  ?stop_after:int ->
  unit ->
  result
(** Stream [config.chunks] chunks. [bandwidth.(t)] is bytes
    deliverable in slot [t] (wrapping), [delays.(t)] an optional
    per-slot request queueing delay in slots, [slot_s] the slot
    duration in seconds and [start] the slot the client joins at.
    Deterministic: equal inputs give bit-identical results.

    With [state], playback continues from the supplied (possibly
    restored) snapshot and [start] is ignored — the position lives in
    the state. With [stop_after], streaming pauses after chunk
    [stop_after - 1], leaving [state] ready to snapshot or continue;
    the returned result is only meaningful once all chunks have
    streamed. Running to completion in one call or across any split
    of [stop_after] points yields bit-identical results (enforced by
    test).
    @raise Invalid_argument on an invalid config, empty or all-zero
    bandwidth, a [delays] length mismatch, [start] out of range, a
    state whose throughput window disagrees with [config], or
    [stop_after] outside [next chunk, chunks]. *)

val save_result : result -> Ss_checkpoint.W.t -> unit
val read_result : Ss_checkpoint.R.t -> result
(** Codec for completed-client results ({!Fleet}'s checkpoint stores
    the finished prefix of its fleet). *)

(** Fleets of streaming clients over one multiplexer trajectory, with
    distributional QoE reporting.

    Client [j] streams from source [j mod sources] of the trajectory
    and joins at a random slot drawn from its own
    {!Ss_stats.Rng.split} substream via {!Ss_parallel.Fanout.map} —
    so a fleet run is bit-identical sequentially and at any domain
    count, and thousands of clients amortize one mux run. *)

type summary = {
  mean : float;
  std : float;
  min : float;
  max : float;
  q10 : float;
  q50 : float;
  q90 : float;
}

type report = {
  clients : int;
  policy : string;
  chunks : int;
  qoe : summary;
  rebuffer_ratio : summary;
  bitrate_mbps : summary;
  startup_s : summary;
  rebuffer_s_total : float;  (** summed stall seconds across the fleet *)
  zero_rebuffer_fraction : float;  (** clients with no stall at all *)
  mean_level : float;
  mean_switches : float;
}

val summarize : float array -> summary
(** Moments plus exact type-7 sample quantiles.
    @raise Invalid_argument on an empty array. *)

type checkpoint = {
  every : int;  (** clients between snapshots *)
  save : clients_done:int -> (Ss_checkpoint.W.t -> unit) -> unit;
      (** handed the number of finished clients and a serializer for
          their results prefix; the callback owns framing and I/O *)
}
(** Periodic snapshot hook for {!run}. Granularity is one whole
    client: each client is self-contained, so the snapshot is the
    completed results in client order plus the count. *)

val run :
  ?pool:Ss_parallel.Pool.t ->
  rng:Ss_stats.Rng.t ->
  clients:int ->
  policy:Policy.t ->
  ladder:Ladder.t ->
  trajectory:Trajectory.t ->
  ?config:Client.config ->
  ?checkpoint:checkpoint ->
  ?resume:Ss_checkpoint.R.t ->
  unit ->
  report * Client.result array
(** Run [clients] independent clients against the trajectory and
    summarize. Advances [rng] by [clients] splits on the caller.

    With [checkpoint] or [resume], the fleet runs on a sequential
    lane over the same {!Ss_stats.Rng.split_n} substreams the pooled
    fan-out would use, so results stay bit-identical to an
    uncheckpointed (or pooled) run; a resumed fleet — over the same
    [rng] seed, trajectory and policy — replays only the RNG splits,
    skips the restored finished clients, and returns a report bitwise
    equal to the uninterrupted one's (enforced by test).
    @raise Invalid_argument if [clients <= 0], the trajectory is not
    fully filled, or a checkpoint interval is < 1.
    @raise Ss_checkpoint.Corrupt when [resume] disagrees with the
    reconstructed fleet (policy, client count) or is malformed. *)

val pp_report : Format.formatter -> report -> unit

(** Fleets of streaming clients over one multiplexer trajectory, with
    distributional QoE reporting.

    Client [j] streams from source [j mod sources] of the trajectory
    and joins at a random slot drawn from its own
    {!Ss_stats.Rng.split} substream via {!Ss_parallel.Fanout.map} —
    so a fleet run is bit-identical sequentially and at any domain
    count, and thousands of clients amortize one mux run. *)

type summary = {
  mean : float;
  std : float;
  min : float;
  max : float;
  q10 : float;
  q50 : float;
  q90 : float;
}

type report = {
  clients : int;
  policy : string;
  chunks : int;
  qoe : summary;
  rebuffer_ratio : summary;
  bitrate_mbps : summary;
  startup_s : summary;
  rebuffer_s_total : float;  (** summed stall seconds across the fleet *)
  zero_rebuffer_fraction : float;  (** clients with no stall at all *)
  mean_level : float;
  mean_switches : float;
}

val summarize : float array -> summary
(** Moments plus exact type-7 sample quantiles.
    @raise Invalid_argument on an empty array. *)

val run :
  ?pool:Ss_parallel.Pool.t ->
  rng:Ss_stats.Rng.t ->
  clients:int ->
  policy:Policy.t ->
  ladder:Ladder.t ->
  trajectory:Trajectory.t ->
  ?config:Client.config ->
  unit ->
  report * Client.result array
(** Run [clients] independent clients against the trajectory and
    summarize. Advances [rng] by [clients] splits on the caller.
    @raise Invalid_argument if [clients <= 0] or the trajectory is
    not fully filled. *)

val pp_report : Format.formatter -> report -> unit

type observation = {
  chunk_index : int;
  buffer_s : float;
  last_level : int;
  throughput_Bps : float;
  rates : float array;
  max_buffer_s : float;
}

type t = { name : string; choose : observation -> int }

let make ~name choose = { name; choose }

(* Highest level whose nominal rate fits under [budget]; level 0 when
   even the lowest does not. *)
let highest_fitting rates budget =
  let l = ref 0 in
  for i = 0 to Array.length rates - 1 do
    if rates.(i) <= budget then l := i
  done;
  !l

let bba ?(reservoir_s = 5.0) ?(cushion_s = 10.0) () =
  if not (reservoir_s > 0.0) then invalid_arg "Policy.bba: reservoir_s <= 0";
  if not (cushion_s > 0.0) then invalid_arg "Policy.bba: cushion_s <= 0";
  {
    name = "bba";
    choose =
      (fun o ->
        let top = Array.length o.rates - 1 in
        if o.buffer_s <= reservoir_s then 0
        else if o.buffer_s >= reservoir_s +. cushion_s then top
        else begin
          (* BBA-0 linear map from buffer occupancy inside the cushion
             to the rate axis: pick the highest rendition under the
             mapped rate. *)
          let rmin = o.rates.(0) and rmax = o.rates.(top) in
          let target =
            rmin +. ((o.buffer_s -. reservoir_s) /. cushion_s *. (rmax -. rmin))
          in
          highest_fitting o.rates target
        end);
  }

let rate ?(safety = 0.85) () =
  if not (safety > 0.0 && safety <= 1.0) then invalid_arg "Policy.rate: safety outside (0,1]";
  {
    name = "rate";
    choose =
      (fun o ->
        if o.throughput_Bps <= 0.0 then 0
        else highest_fitting o.rates (safety *. o.throughput_Bps));
  }

let fixed level =
  if level < 0 then invalid_arg "Policy.fixed: negative level";
  { name = Printf.sprintf "fixed-%d" level; choose = (fun _ -> level) }
